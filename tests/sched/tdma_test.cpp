#include "sched/tdma.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TdmaTask tt(std::string name, Time cet, Time slot, ModelPtr act) {
  return TdmaTask{TaskParams{std::move(name), 0, ExecutionTime(cet), std::move(act)}, slot};
}

TEST(TdmaTest, ServiceCurveShape) {
  // slot 2, cycle 10: worst alignment sees (gap 8, slot 2, gap 8, ...).
  TdmaAnalysis a({tt("t", 1, 2, periodic(100))}, 10);
  EXPECT_EQ(a.service(0, 0), 0);
  EXPECT_EQ(a.service(0, 8), 0);
  EXPECT_EQ(a.service(0, 9), 1);
  EXPECT_EQ(a.service(0, 10), 2);
  EXPECT_EQ(a.service(0, 18), 2);
  EXPECT_EQ(a.service(0, 19), 3);
  EXPECT_EQ(a.service(0, 20), 4);
}

TEST(TdmaTest, ServiceInverseIsExactInverse) {
  TdmaAnalysis a({tt("t", 1, 2, periodic(100))}, 10);
  for (Time demand = 1; demand <= 40; ++demand) {
    const Time t = a.service_inverse(0, demand);
    EXPECT_GE(a.service(0, t), demand) << "demand=" << demand;
    EXPECT_LT(a.service(0, t - 1), demand) << "demand=" << demand;
  }
}

TEST(TdmaTest, ResponseIncludesSlotWaiting) {
  // C=3, slot=2, cycle=10: needs 2 slots; worst case waits 8, executes 2,
  // waits 8, executes 1 -> 19.
  TdmaAnalysis a({tt("t", 3, 2, periodic(100))}, 10);
  EXPECT_EQ(a.analyze(0).wcrt, 19);
}

TEST(TdmaTest, IsolationFromOtherTasks) {
  // TDMA fully isolates: adding tasks in other slots changes nothing.
  TdmaAnalysis alone({tt("t", 3, 2, periodic(100))}, 10);
  TdmaAnalysis crowded({tt("t", 3, 2, periodic(100)), tt("noisy", 7, 7, periodic(9))}, 10);
  EXPECT_EQ(alone.analyze(0).wcrt, crowded.analyze(0).wcrt);
}

TEST(TdmaTest, BestCaseStartsInOwnSlot) {
  TdmaAnalysis a({tt("t", 3, 2, periodic(100))}, 10);
  // Best case: 2 ticks in first slot, gap 8, 1 tick -> 11.
  EXPECT_EQ(a.analyze(0).bcrt, 11);
}

TEST(TdmaTest, SlotLargerThanDemandIsSingleWait) {
  TdmaAnalysis a({tt("t", 2, 2, periodic(100))}, 10);
  // Wait out the gap (8) then run 2 -> 10.
  EXPECT_EQ(a.analyze(0).wcrt, 10);
}

TEST(TdmaTest, ValidationErrors) {
  EXPECT_THROW(TdmaAnalysis({}, 10), std::invalid_argument);
  EXPECT_THROW(TdmaAnalysis({tt("t", 1, 0, periodic(10))}, 10), std::invalid_argument);
  EXPECT_THROW(TdmaAnalysis({tt("a", 1, 6, periodic(10)), tt("b", 1, 6, periodic(10))}, 10),
               std::invalid_argument);
}

TEST(TdmaTest, BacklogAcrossActivations) {
  // Demand faster than the slot bandwidth within a burst: the busy period
  // covers several activations.
  const auto burst = StandardEventModel::periodic_with_jitter(50, 60);
  TdmaAnalysis a({tt("t", 4, 4, burst)}, 10);
  const auto r = a.analyze(0);
  EXPECT_GE(r.activations, 2);
  EXPECT_GT(r.wcrt, 10);
}

}  // namespace
}  // namespace hem::sched
