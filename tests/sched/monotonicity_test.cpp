// Analysis monotonicity properties: response bounds must react to
// parameter changes in the physically sensible direction.  These sweeps
// guard against subtle regressions in the fixpoint machinery.

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sched/can_bus.hpp"
#include "sched/spp.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TaskParams task(std::string name, int prio, Time cet, ModelPtr act) {
  return TaskParams{std::move(name), prio, ExecutionTime(cet), std::move(act)};
}

TEST(MonotonicityTest, SppWcrtGrowsWithOwnCet) {
  Time prev = 0;
  for (Time c = 1; c <= 40; c += 3) {
    SppAnalysis a({task("hp", 1, 2, periodic(10)), task("lp", 2, c, periodic(200))});
    const Time w = a.analyze(1).wcrt;
    EXPECT_GE(w, prev) << c;
    EXPECT_GE(w, c) << c;
    prev = w;
  }
}

TEST(MonotonicityTest, SppWcrtGrowsWithInterfererJitter) {
  Time prev = 0;
  for (Time j = 0; j <= 60; j += 5) {
    SppAnalysis a({task("hp", 1, 3, StandardEventModel::periodic_with_jitter(20, j)),
                   task("lp", 2, 8, periodic(100))});
    const Time w = a.analyze(1).wcrt;
    EXPECT_GE(w, prev) << j;
    prev = w;
  }
}

TEST(MonotonicityTest, SppWcrtShrinksWithInterfererPeriod) {
  Time prev = kTimeInfinity;
  for (Time p = 8; p <= 80; p += 6) {
    SppAnalysis a({task("hp", 1, 3, periodic(p)), task("lp", 2, 8, periodic(400))});
    const Time w = a.analyze(1).wcrt;
    EXPECT_LE(w, prev) << p;
    prev = w;
  }
}

TEST(MonotonicityTest, CanWcrtGrowsWithBlocking) {
  Time prev = 0;
  for (Time blocker = 1; blocker <= 30; blocker += 4) {
    CanBusAnalysis a(
        {task("hi", 1, 4, periodic(100)), task("lo", 2, blocker, periodic(400))});
    const Time w = a.analyze(0).wcrt;
    EXPECT_GE(w, prev) << blocker;
    prev = w;
  }
}

TEST(MonotonicityTest, BacklogGrowsWithBurstSize) {
  Count prev = 0;
  for (Time j = 0; j <= 900; j += 150) {
    SppAnalysis a({task("t", 1, 10, StandardEventModel::periodic_with_jitter(100, j))});
    const Count b = a.analyze(0).backlog;
    EXPECT_GE(b, prev) << j;
    prev = b;
  }
}

TEST(MonotonicityTest, AddingTaskNeverHelpsAnyone) {
  const std::vector<TaskParams> base{task("a", 1, 2, periodic(20)),
                                     task("b", 2, 5, periodic(60))};
  std::vector<TaskParams> more = base;
  more.push_back(task("c", 3, 4, periodic(80)));
  // Existing tasks: unchanged (c is lowest priority) for SPP...
  SppAnalysis small(base), big(more);
  EXPECT_EQ(small.analyze(0).wcrt, big.analyze(0).wcrt);
  EXPECT_EQ(small.analyze(1).wcrt, big.analyze(1).wcrt);
  // ...but on CAN the new frame blocks everyone above it.
  CanBusAnalysis can_small(base), can_big(more);
  EXPECT_GE(can_big.analyze(0).wcrt, can_small.analyze(0).wcrt);
  EXPECT_GE(can_big.analyze(1).wcrt, can_small.analyze(1).wcrt);
}

}  // namespace
}  // namespace hem::sched
