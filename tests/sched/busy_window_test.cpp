#include "sched/busy_window.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::sched {
namespace {

TEST(ExecutionTimeTest, Validation) {
  EXPECT_NO_THROW(ExecutionTime(0));
  EXPECT_NO_THROW(ExecutionTime(2, 5));
  EXPECT_THROW(ExecutionTime(-1), std::invalid_argument);
  EXPECT_THROW(ExecutionTime(5, 2), std::invalid_argument);
  const ExecutionTime e(3);
  EXPECT_EQ(e.best, 3);
  EXPECT_EQ(e.worst, 3);
}

TEST(LeastFixpointTest, FindsFixpoint) {
  // w = 10 + floor(w/2): ascending from 0 stabilises at 19.
  const Time w = least_fixpoint([](Time w_cur) { return 10 + w_cur / 2; }, 0, {},
                                "test");
  EXPECT_EQ(w, 19);
}

TEST(LeastFixpointTest, ImmediateFixpoint) {
  EXPECT_EQ(least_fixpoint([](Time w) { return w; }, 7, {}, "test"), 7);
}

TEST(LeastFixpointTest, DivergenceHitsWindowCap) {
  FixpointLimits limits;
  limits.max_window = 1000;
  EXPECT_THROW(least_fixpoint([](Time w) { return w + 7; }, 0, limits, "test"),
               AnalysisError);
}

TEST(LeastFixpointTest, NonMonotoneDetected) {
  EXPECT_THROW(least_fixpoint([](Time w) { return w > 5 ? 0 : w + 3; }, 0, {}, "test"),
               AnalysisError);
}

TEST(BacklogBoundTest, PeriodicNeverQueues) {
  const auto m = StandardEventModel::periodic(100);
  // Completions well before the next arrival.
  EXPECT_EQ(backlog_bound(*m, {10}), 1);
}

TEST(BacklogBoundTest, SlowServiceAccumulates) {
  const auto m = StandardEventModel::periodic(10);
  // Completions at 25, 50, 75: when job 3 arrives at 20, none have
  // completed -> backlog 3; job 4 arrives at 30 with one done -> 3.
  EXPECT_EQ(backlog_bound(*m, {25, 50, 75, 100}), 3);
}

TEST(BacklogBoundTest, EmptyCompletions) {
  const auto m = StandardEventModel::periodic(10);
  EXPECT_EQ(backlog_bound(*m, {}), 0);
}

TEST(ValidateTaskSetTest, CatchesProblems) {
  const auto m = StandardEventModel::periodic(10);
  EXPECT_THROW(validate_priority_task_set({}, "x"), std::invalid_argument);
  EXPECT_THROW(validate_priority_task_set({TaskParams{"", 1, ExecutionTime(1), m}}, "x"),
               std::invalid_argument);
  EXPECT_THROW(
      validate_priority_task_set({TaskParams{"a", 1, ExecutionTime(1), nullptr}}, "x"),
      std::invalid_argument);
  EXPECT_NO_THROW(validate_priority_task_set(
      {TaskParams{"a", 1, ExecutionTime(1), m}, TaskParams{"b", 2, ExecutionTime(1), m}},
      "x"));
}

}  // namespace
}  // namespace hem::sched
