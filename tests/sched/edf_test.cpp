#include "sched/edf.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

EdfTask et(std::string name, Time cet, Time deadline, ModelPtr act) {
  return EdfTask{TaskParams{std::move(name), 0, ExecutionTime(cet), std::move(act)}, deadline};
}

TEST(EdfTest, DemandBoundFunctionShape) {
  EdfAnalysis a({et("t", 2, 5, periodic(10))});
  EXPECT_EQ(a.demand_bound(Time{4}), 0);   // before first deadline
  EXPECT_EQ(a.demand_bound(Time{5}), 2);   // first job: arrive 0, deadline 5
  EXPECT_EQ(a.demand_bound(Time{14}), 2);
  EXPECT_EQ(a.demand_bound(Time{15}), 4);  // second job: arrive 10, deadline 15
  EXPECT_EQ(a.demand_bound(Time{25}), 6);
}

TEST(EdfTest, FullUtilisationImplicitDeadlinesSchedulable) {
  // EDF schedules any implicit-deadline set with utilisation <= 1.
  EdfAnalysis a({et("a", 2, 5, periodic(5)), et("b", 3, 5, periodic(5))});
  EXPECT_TRUE(a.schedulable());
}

TEST(EdfTest, OverUtilisationUnschedulable) {
  EdfAnalysis a({et("a", 3, 5, periodic(5)), et("b", 3, 5, periodic(5))});
  // The busy-period fixpoint itself diverges at utilisation > 1.
  EXPECT_THROW(a.schedulable(), AnalysisError);
}

TEST(EdfTest, ConstrainedDeadlineDetection) {
  // Same workload, tightening one deadline flips schedulability.
  EdfAnalysis loose({et("a", 4, 10, periodic(10)), et("b", 4, 10, periodic(10))});
  EXPECT_TRUE(loose.schedulable());
  EdfAnalysis tight({et("a", 4, 4, periodic(10)), et("b", 4, 4, periodic(10))});
  EXPECT_FALSE(tight.schedulable());
}

TEST(EdfTest, SingleTaskResponseIsItsCet) {
  EdfAnalysis a({et("t", 7, 20, periodic(50))});
  EXPECT_EQ(a.analyze(0).wcrt, 7);
}

TEST(EdfTest, ShorterDeadlineWinsInterference) {
  // a: C=2 D=4; b: C=6 D=20, both P=20.  b is delayed by a (earlier
  // deadline): R_b = 8.  a is not delayed by b (later deadline): R_a = 2.
  EdfAnalysis a({et("a", 2, 4, periodic(20)), et("b", 6, 20, periodic(20))});
  EXPECT_EQ(a.analyze(0).wcrt, 2);
  EXPECT_EQ(a.analyze(1).wcrt, 8);
}

TEST(EdfTest, EqualDeadlinesInterfereMutually) {
  EdfAnalysis a({et("a", 2, 10, periodic(20)), et("b", 3, 10, periodic(20))});
  // Conservative: each may wait for the other.
  EXPECT_EQ(a.analyze(0).wcrt, 5);
  EXPECT_EQ(a.analyze(1).wcrt, 5);
}

TEST(EdfTest, ResponseBoundedByDeadlineWhenSchedulable) {
  EdfAnalysis a({et("a", 2, 6, periodic(10)), et("b", 3, 9, periodic(12)),
                 et("c", 2, 12, periodic(15))});
  ASSERT_TRUE(a.schedulable());
  for (const auto& r : a.analyze_all()) EXPECT_LE(r.wcrt, 12) << r.name;
}

TEST(EdfTest, JitteredActivationIncreasesDemand) {
  EdfAnalysis smooth({et("t", 2, 5, periodic(10))});
  EdfAnalysis jittery({et("t", 2, 5, StandardEventModel::periodic_with_jitter(10, 12))});
  EXPECT_GE(jittery.demand_bound(Time{5}), smooth.demand_bound(Time{5}));
  EXPECT_GE(jittery.analyze(0).wcrt, smooth.analyze(0).wcrt);
}

TEST(EdfTest, ValidationErrors) {
  EXPECT_THROW(EdfAnalysis({}), std::invalid_argument);
  EXPECT_THROW(EdfAnalysis({et("t", 2, 0, periodic(10))}), std::invalid_argument);
  EXPECT_THROW(
      EdfAnalysis({EdfTask{TaskParams{"t", 0, ExecutionTime(2), nullptr}, 5}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace hem::sched
