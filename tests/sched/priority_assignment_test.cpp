#include "sched/priority_assignment.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sched/can_bus.hpp"
#include "sched/spp.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

OpaTask ot(std::string name, Time cet, Time period, Time deadline) {
  return OpaTask{TaskParams{std::move(name), 0, ExecutionTime(cet), periodic(period)},
                 deadline};
}

void verify_assignment(const std::vector<OpaTask>& tasks, const std::vector<int>& prios,
                       OpaPolicy policy) {
  std::vector<TaskParams> params;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    TaskParams p = tasks[i].params;
    p.priority = prios[i];
    params.push_back(std::move(p));
  }
  if (policy == OpaPolicy::kSppPreemptive) {
    SppAnalysis a(params);
    for (std::size_t i = 0; i < tasks.size(); ++i)
      EXPECT_LE(a.analyze(i).wcrt, tasks[i].deadline) << tasks[i].params.name;
  } else {
    CanBusAnalysis a(params);
    for (std::size_t i = 0; i < tasks.size(); ++i)
      EXPECT_LE(a.analyze(i).wcrt, tasks[i].deadline) << tasks[i].params.name;
  }
}

TEST(OpaTest, FindsRateMonotonicLikeAssignment) {
  const std::vector<OpaTask> tasks{ot("slow", 20, 100, 100), ot("fast", 2, 10, 10),
                                   ot("mid", 5, 30, 30)};
  const auto prios = assign_priorities_opa(tasks);
  ASSERT_TRUE(prios.has_value());
  // OPA returns SOME feasible assignment (not necessarily rate-monotonic);
  // here the heavy slow task must end up lowest, and the result must pass
  // the response-time re-check.
  EXPECT_EQ((*prios)[0], 3);
  verify_assignment(tasks, *prios, OpaPolicy::kSppPreemptive);
}

TEST(OpaTest, SolvesCaseWhereDeadlineMonotonicFails) {
  // Classic OPA-beats-DM shape: a jitterless DM ordering by deadline fails,
  // but an assignment exists.  b has the shorter deadline but a long
  // period; a has a long deadline... construct: a (C=5, P=10, D=20),
  // b (C=8, P=20, D=12).  DM: b above a -> a: R = 5 + 8*eta... a busy with
  // b above: w(1)=5+8=13, w(2)=10+8=18, R(2)=18-10=8 <= 20 OK; b: 8 <= 12 OK.
  // Try a harder instance instead: verify OPA returns SOME feasible
  // assignment on a tight three-task set where one ordering fails.
  const std::vector<OpaTask> tasks{ot("a", 4, 12, 12), ot("b", 5, 15, 15),
                                   ot("c", 3, 30, 30)};
  const auto prios = assign_priorities_opa(tasks);
  ASSERT_TRUE(prios.has_value());
  verify_assignment(tasks, *prios, OpaPolicy::kSppPreemptive);
}

TEST(OpaTest, InfeasibleSetReported) {
  // Utilisation > 1: no assignment can work.
  const std::vector<OpaTask> tasks{ot("a", 8, 10, 10), ot("b", 8, 10, 10)};
  EXPECT_FALSE(assign_priorities_opa(tasks).has_value());
}

TEST(OpaTest, TightDeadlinesInfeasible) {
  // Schedulable by utilisation but both deadlines shorter than the other's
  // CET + own CET: whoever is lower misses.
  const std::vector<OpaTask> tasks{ot("a", 5, 100, 6), ot("b", 5, 100, 6)};
  EXPECT_FALSE(assign_priorities_opa(tasks).has_value());
}

TEST(OpaTest, CanPolicyAccountsForBlocking) {
  // On CAN, even the highest priority suffers blocking: deadline must
  // absorb max lower C.
  // hi at the top still suffers blocking C_lo = 6: R = 6 + 4 = 10.
  const std::vector<OpaTask> tasks{ot("hi", 4, 100, 10), ot("lo", 6, 100, 50)};
  const auto prios = assign_priorities_opa(tasks, OpaPolicy::kSpnpCan);
  ASSERT_TRUE(prios.has_value());
  verify_assignment(tasks, *prios, OpaPolicy::kSpnpCan);
  // With a deadline below C_lo + C_hi = 10 the set becomes infeasible
  // (either position yields R = 10 > 9).
  const std::vector<OpaTask> tight{ot("hi", 4, 100, 9), ot("lo", 6, 100, 50)};
  EXPECT_FALSE(assign_priorities_opa(tight, OpaPolicy::kSpnpCan).has_value());
}

TEST(OpaTest, WorksWithJitteredActivations) {
  std::vector<OpaTask> tasks{ot("a", 3, 20, 15), ot("b", 6, 40, 40)};
  tasks[0].params.activation = StandardEventModel::periodic_with_jitter(20, 25);
  const auto prios = assign_priorities_opa(tasks);
  ASSERT_TRUE(prios.has_value());
  verify_assignment(tasks, *prios, OpaPolicy::kSppPreemptive);
}

TEST(OpaTest, ValidationErrors) {
  EXPECT_THROW(assign_priorities_opa({}), std::invalid_argument);
  EXPECT_THROW(assign_priorities_opa({ot("a", 1, 10, 0)}), std::invalid_argument);
}

TEST(DmTest, OrdersByDeadline) {
  const std::vector<OpaTask> tasks{ot("late", 1, 100, 90), ot("early", 1, 100, 10),
                                   ot("mid", 1, 100, 50)};
  const auto prios = assign_priorities_dm(tasks);
  EXPECT_EQ(prios, (std::vector<int>{3, 1, 2}));
}

TEST(DmTest, StableForEqualDeadlines) {
  const std::vector<OpaTask> tasks{ot("first", 1, 100, 50), ot("second", 1, 100, 50)};
  const auto prios = assign_priorities_dm(tasks);
  EXPECT_EQ(prios, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace hem::sched
