#include "sched/resource_server.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sched/spp.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TaskParams task(std::string name, int prio, Time cet, ModelPtr act) {
  return TaskParams{std::move(name), prio, ExecutionTime(cet), std::move(act)};
}

TEST(PeriodicServerTest, SbfBlackoutAndSlope) {
  const PeriodicServer s(10, 2);  // gap 8, blackout 16
  EXPECT_EQ(s.sbf(0), 0);
  EXPECT_EQ(s.sbf(16), 0);
  EXPECT_EQ(s.sbf(17), 1);
  EXPECT_EQ(s.sbf(18), 2);
  EXPECT_EQ(s.sbf(26), 2);
  EXPECT_EQ(s.sbf(28), 4);
}

TEST(PeriodicServerTest, SbfInverseIsExactInverse) {
  const PeriodicServer s(10, 3);
  for (Time demand = 1; demand <= 50; ++demand) {
    const Time t = s.sbf_inverse(demand);
    EXPECT_GE(s.sbf(t), demand) << demand;
    EXPECT_LT(s.sbf(t - 1), demand) << demand;
  }
}

TEST(PeriodicServerTest, FullBandwidthServerIsTransparent) {
  const PeriodicServer s(10, 10);
  for (Time t = 0; t <= 100; t += 7) EXPECT_EQ(s.sbf(t), t);
  EXPECT_EQ(s.sbf_inverse(42), 42);
}

TEST(PeriodicServerTest, RejectsBadParameters) {
  EXPECT_THROW(PeriodicServer(0, 1), std::invalid_argument);
  EXPECT_THROW(PeriodicServer(10, 0), std::invalid_argument);
  EXPECT_THROW(PeriodicServer(10, 11), std::invalid_argument);
}

TEST(ServerSppTest, FullBandwidthServerMatchesPlainSpp) {
  const std::vector<TaskParams> tasks{task("hp", 1, 2, periodic(5)),
                                      task("lp", 2, 4, periodic(20))};
  const ServerSppAnalysis under_server(PeriodicServer(50, 50), tasks);
  const SppAnalysis plain(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i)
    EXPECT_EQ(under_server.analyze(i).wcrt, plain.analyze(i).wcrt) << i;
}

TEST(ServerSppTest, ThrottledServerSlowsTasks) {
  const std::vector<TaskParams> tasks{task("t", 1, 4, periodic(100))};
  const ServerSppAnalysis half(PeriodicServer(10, 5), tasks);
  const ServerSppAnalysis full(PeriodicServer(10, 10), tasks);
  EXPECT_GT(half.analyze(0).wcrt, full.analyze(0).wcrt);
  // Worst case under (10, 5): blackout 10, then 4 ticks of the next slot:
  // sbf_inverse(4) = gap + 0*Pi + gap + 4 = 5 + 5 + 4 = 14.
  EXPECT_EQ(half.analyze(0).wcrt, 14);
}

TEST(ServerSppTest, HierarchyComposesWithParentSpp) {
  // Two servers on one CPU, each hosting tasks.  Parent level: servers as
  // periodic tasks; child level: server SPP analysis.
  const PeriodicServer s1(20, 8);
  const PeriodicServer s2(20, 6);
  // Parent schedulability: utilisation 8/20 + 6/20 < 1 and the low-priority
  // "server task" meets its period.
  SppAnalysis parent({task("srv1", 1, 8, periodic(20)), task("srv2", 2, 6, periodic(20))});
  EXPECT_LE(parent.analyze(0).wcrt, 20);
  EXPECT_LE(parent.analyze(1).wcrt, 20);

  const ServerSppAnalysis child1(s1, {task("a", 1, 2, periodic(40)),
                                      task("b", 2, 3, periodic(80))});
  const auto ra = child1.analyze(0);
  const auto rb = child1.analyze(1);
  EXPECT_GT(ra.wcrt, 2);   // server gaps visible
  EXPECT_LT(ra.wcrt, 40);  // still schedulable within its period
  EXPECT_GT(rb.wcrt, ra.wcrt);
}

TEST(ServerSppTest, OverloadedServerThrows) {
  // Demand 6 per 10 into a server supplying 2 per 10.
  const ServerSppAnalysis a(PeriodicServer(10, 2), {task("t", 1, 6, periodic(10))});
  EXPECT_THROW(a.analyze(0), AnalysisError);
}

}  // namespace
}  // namespace hem::sched
