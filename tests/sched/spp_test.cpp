#include "sched/spp.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TaskParams task(std::string name, int prio, Time cet, ModelPtr act) {
  return TaskParams{std::move(name), prio, ExecutionTime(cet), std::move(act)};
}

TEST(SppTest, SingleTaskResponseIsItsCet) {
  SppAnalysis a({task("t", 1, 10, periodic(100))});
  const auto r = a.analyze(0);
  EXPECT_EQ(r.wcrt, 10);
  EXPECT_EQ(r.bcrt, 10);
  EXPECT_EQ(r.activations, 1);
}

TEST(SppTest, ClassicTwoTaskExample) {
  // hp: C=2, P=5.  lp: C=4, P=20.
  // lp busy window: w = 4 + 2*ceil(...): w=4 -> I = 2*eta(4)=2 -> 6;
  // w=6 -> eta(6)=2 -> 8; w=8 -> 8 (eta(8)=2). WCRT(lp) = 8.
  SppAnalysis a({task("hp", 1, 2, periodic(5)), task("lp", 2, 4, periodic(20))});
  EXPECT_EQ(a.analyze(0).wcrt, 2);
  EXPECT_EQ(a.analyze(1).wcrt, 8);
}

TEST(SppTest, LehoczkyArbitraryDeadlineExample) {
  // The classic arbitrary-deadline example: t1 C=26 P=70 (high), t2 C=62
  // P=100 (low).  The level-2 busy period is 694 ticks and spans 7
  // activations of t2; completions w(q) and responses w(q) - 100(q-1):
  //   q:     1    2    3    4    5    6    7
  //   w(q):  114  202  316  404  518  606  694
  //   R(q):  114  102  116  104  118  106  94
  // so the 5th activation dominates with WCRT 118.
  SppAnalysis a({task("t1", 1, 26, periodic(70)), task("t2", 2, 62, periodic(100))});
  const auto r = a.analyze(1);
  EXPECT_EQ(r.wcrt, 118);
  EXPECT_EQ(r.busy_period, 694);
  EXPECT_EQ(r.activations, 7);
}

TEST(SppTest, JitteredInterferenceIncreasesResponse) {
  const auto smooth = SppAnalysis({task("hp", 1, 2, periodic(5)),
                                   task("lp", 2, 4, periodic(20))})
                          .analyze(1)
                          .wcrt;
  const auto jittered =
      SppAnalysis({task("hp", 1, 2, StandardEventModel::periodic_with_jitter(5, 6)),
                   task("lp", 2, 4, periodic(20))})
          .analyze(1)
          .wcrt;
  EXPECT_GT(jittered, smooth);
}

TEST(SppTest, BurstActivationMultipleQ) {
  // Task activated by a burst of 3 simultaneous events.
  const auto burst = StandardEventModel::periodic_with_jitter(100, 250);
  SppAnalysis a({task("t", 1, 10, burst)});
  const auto r = a.analyze(0);
  // Three jobs back to back: the 3rd finishes at 30, arrived at 0.
  EXPECT_EQ(r.wcrt, 30);
  EXPECT_GE(r.activations, 3);
}

TEST(SppTest, OverloadThrows) {
  SppAnalysis a({task("t", 1, 120, periodic(100))});
  EXPECT_THROW(a.analyze(0), AnalysisError);
}

TEST(SppTest, DuplicatePrioritiesRejected) {
  EXPECT_THROW(SppAnalysis({task("a", 1, 1, periodic(10)), task("b", 1, 1, periodic(10))}),
               std::invalid_argument);
}

TEST(SppTest, AnalyzeAllKeepsOrder) {
  SppAnalysis a({task("x", 2, 4, periodic(20)), task("y", 1, 2, periodic(5))});
  const auto all = a.analyze_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].name, "x");
  EXPECT_EQ(all[1].name, "y");
  EXPECT_EQ(all[1].wcrt, 2);
}

TEST(SppTest, LowerPriorityNeverFaster) {
  // Adding interference can only increase response times.
  const std::vector<Time> periods{7, 13, 29, 53};
  std::vector<TaskParams> tasks;
  for (std::size_t i = 0; i < periods.size(); ++i)
    tasks.push_back(task("t" + std::to_string(i), static_cast<int>(i), 2, periodic(periods[i])));
  SppAnalysis a(tasks);
  Time prev = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const Time r = a.analyze(i).wcrt;
    EXPECT_GE(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace hem::sched
