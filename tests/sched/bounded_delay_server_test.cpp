#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sched/resource_server.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TaskParams task(std::string name, int prio, Time cet, ModelPtr act) {
  return TaskParams{std::move(name), prio, ExecutionTime(cet), std::move(act)};
}

TEST(BoundedDelayServerTest, SbfShape) {
  // Delay 10, rate 1/2.
  const BoundedDelayServer s(10, 1, 2);
  EXPECT_EQ(s.sbf(10), 0);
  EXPECT_EQ(s.sbf(11), 0);  // (11-10)/2 floors to 0
  EXPECT_EQ(s.sbf(12), 1);
  EXPECT_EQ(s.sbf(30), 10);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.5);
}

TEST(BoundedDelayServerTest, InverseIsExact) {
  const BoundedDelayServer s(7, 3, 5);
  for (Time demand = 1; demand <= 60; ++demand) {
    const Time t = s.sbf_inverse(demand);
    EXPECT_GE(s.sbf(t), demand) << demand;
    EXPECT_LT(s.sbf(t - 1), demand) << demand;
  }
}

TEST(BoundedDelayServerTest, FullRateZeroDelayIsTransparent) {
  const BoundedDelayServer s(0, 1, 1);
  for (Time t = 0; t <= 50; ++t) EXPECT_EQ(s.sbf(t), t);
  EXPECT_EQ(s.sbf_inverse(37), 37);
}

TEST(BoundedDelayServerTest, PeriodicConformsToItsBoundedDelayAbstraction) {
  // sbf of the periodic server dominates its bounded-delay abstraction.
  const PeriodicServer ps(10, 3);
  const BoundedDelayServer bd = BoundedDelayServer::from_periodic(ps);
  EXPECT_EQ(bd.delay(), 14);
  for (Time t = 0; t <= 300; ++t) EXPECT_GE(ps.sbf(t), bd.sbf(t)) << t;
}

TEST(BoundedDelayServerTest, AnalysisCoarserButSound) {
  // The same task set under the periodic server and its bounded-delay
  // abstraction: the abstraction gives larger (but finite) responses.
  const std::vector<TaskParams> tasks{task("a", 1, 2, periodic(40)),
                                      task("b", 2, 3, periodic(80))};
  const ServerSppAnalysis exact(PeriodicServer(20, 8), tasks);
  const ServerSppAnalysis coarse(
      std::make_shared<BoundedDelayServer>(
          BoundedDelayServer::from_periodic(PeriodicServer(20, 8))),
      tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_GE(coarse.analyze(i).wcrt, exact.analyze(i).wcrt) << i;
    EXPECT_LT(coarse.analyze(i).wcrt, 200) << i;
  }
}

TEST(BoundedDelayServerTest, ValidationErrors) {
  EXPECT_THROW(BoundedDelayServer(-1, 1, 2), std::invalid_argument);
  EXPECT_THROW(BoundedDelayServer(5, 0, 2), std::invalid_argument);
  EXPECT_THROW(BoundedDelayServer(5, 3, 2), std::invalid_argument);
  EXPECT_THROW(ServerSppAnalysis(SupplyPtr{}, {task("t", 1, 1, periodic(10))}),
               std::invalid_argument);
}

TEST(BoundedDelayServerTest, DescribeIsInformative) {
  EXPECT_NE(BoundedDelayServer(7, 3, 5).describe().find("Delta=7"), std::string::npos);
  EXPECT_NE(PeriodicServer(10, 3).describe().find("Pi=10"), std::string::npos);
}

}  // namespace
}  // namespace hem::sched
