#include "sched/round_robin.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

RoundRobinTask rr(std::string name, Time cet, Time slot, ModelPtr act) {
  return RoundRobinTask{TaskParams{std::move(name), 0, ExecutionTime(cet), std::move(act)},
                        slot};
}

TEST(RoundRobinTest, SingleTaskRunsUnimpeded) {
  RoundRobinAnalysis a({rr("t", 10, 5, periodic(100))});
  EXPECT_EQ(a.analyze(0).wcrt, 10);
}

TEST(RoundRobinTest, TwoTasksShareBandwidth) {
  // Both C=10, slot=5, periods 100: t0 needs 2 of its slots; the other can
  // interleave at most 2 slots (bounded by rounds) and no more than its own
  // pending demand.
  RoundRobinAnalysis a({rr("a", 10, 5, periodic(100)), rr("b", 10, 5, periodic(100))});
  const auto r = a.analyze(0);
  // rounds = ceil(10/5) = 2 -> interference min(10, 2*5) = 10 -> w = 20.
  EXPECT_EQ(r.wcrt, 20);
}

TEST(RoundRobinTest, InterferenceBoundedByOthersDemand) {
  // The other task only has C=2 pending per period; even with many rounds it
  // cannot interfere more than its demand.
  RoundRobinAnalysis a({rr("big", 20, 4, periodic(100)), rr("small", 2, 4, periodic(100))});
  const auto r = a.analyze(0);
  // rounds = 5, slots would allow 20, but demand is min(eta*2, 20) = 2.
  EXPECT_EQ(r.wcrt, 22);
}

TEST(RoundRobinTest, InterferenceBoundedBySlots) {
  // The other task has plenty of demand but only its slot per round.
  RoundRobinAnalysis a({rr("me", 10, 10, periodic(200)),
                        rr("greedy", 50, 5, periodic(200))});
  const auto r = a.analyze(0);
  // rounds = 1 -> greedy contributes min(50, 5) = 5 -> w = 15.
  EXPECT_EQ(r.wcrt, 15);
}

TEST(RoundRobinTest, ValidationErrors) {
  EXPECT_THROW(RoundRobinAnalysis({}), std::invalid_argument);
  EXPECT_THROW(RoundRobinAnalysis({rr("t", 5, 0, periodic(10))}), std::invalid_argument);
  EXPECT_THROW(
      RoundRobinAnalysis({RoundRobinTask{TaskParams{"t", 0, ExecutionTime(5), nullptr}, 5}}),
      std::invalid_argument);
}

TEST(RoundRobinTest, MoreTasksMoreInterference) {
  std::vector<RoundRobinTask> two{rr("me", 10, 5, periodic(100)),
                                  rr("o1", 10, 5, periodic(100))};
  std::vector<RoundRobinTask> three = two;
  three.push_back(rr("o2", 10, 5, periodic(100)));
  EXPECT_LE(RoundRobinAnalysis(two).analyze(0).wcrt,
            RoundRobinAnalysis(three).analyze(0).wcrt);
}

}  // namespace
}  // namespace hem::sched
