#include "com/frame.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::com {
namespace {

Signal sig(std::string name, Time period, SignalKind kind, int width = 1) {
  return Signal{std::move(name), StandardEventModel::periodic(period), kind, width, "", ""};
}

TEST(FrameTest, PayloadSumsSignalWidths) {
  Frame f;
  f.name = "F";
  f.signals = {sig("a", 100, SignalKind::kTriggering, 2),
               sig("b", 200, SignalKind::kPending, 3)};
  EXPECT_EQ(f.payload_bytes(), 5);
}

TEST(FrameTest, DirectFrameNeedsATriggeringSignal) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kDirect;
  f.signals = {sig("a", 100, SignalKind::kPending)};
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.signals.push_back(sig("b", 200, SignalKind::kTriggering));
  EXPECT_NO_THROW(f.validate());
}

TEST(FrameTest, PeriodicFrameNeedsPeriod) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kPeriodic;
  f.signals = {sig("a", 100, SignalKind::kPending)};
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.period = 50;
  EXPECT_NO_THROW(f.validate());
}

TEST(FrameTest, MixedFrameNeedsPeriodToo) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kMixed;
  f.signals = {sig("a", 100, SignalKind::kTriggering)};
  EXPECT_THROW(f.validate(), std::invalid_argument);
  f.period = 500;
  EXPECT_NO_THROW(f.validate());
}

TEST(FrameTest, SignalTriggersDependsOnFrameType) {
  Frame f;
  f.name = "F";
  f.signals = {sig("trig", 100, SignalKind::kTriggering),
               sig("pend", 200, SignalKind::kPending)};
  f.type = FrameType::kDirect;
  EXPECT_TRUE(f.signal_triggers(0));
  EXPECT_FALSE(f.signal_triggers(1));
  // In a periodic frame, even a "triggering" signal is effectively pending.
  f.type = FrameType::kPeriodic;
  f.period = 50;
  EXPECT_FALSE(f.signal_triggers(0));
  EXPECT_FALSE(f.signal_triggers(1));
  f.type = FrameType::kMixed;
  EXPECT_TRUE(f.signal_triggers(0));
}

TEST(FrameTest, ValidationRejectsBrokenSignals) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kPeriodic;
  f.period = 100;
  EXPECT_THROW(f.validate(), std::invalid_argument);  // no signals
  f.signals = {Signal{"a", nullptr, SignalKind::kPending, 1, "", ""}};
  EXPECT_THROW(f.validate(), std::invalid_argument);  // null source
  f.signals = {sig("a", 100, SignalKind::kPending, 0)};
  EXPECT_THROW(f.validate(), std::invalid_argument);  // zero width
}

}  // namespace
}  // namespace hem::com
