#include <gtest/gtest.h>

#include "com/com_layer.hpp"
#include "core/combinators.hpp"
#include "core/standard_event_model.hpp"

namespace hem::com {
namespace {

Signal sig(std::string name, Time period, SignalKind kind, std::string group = "") {
  Signal s{std::move(name), StandardEventModel::periodic(period), kind, 1, "", ""};
  s.group = std::move(group);
  return s;
}

Frame frame_with(std::vector<Signal> signals) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kDirect;
  f.priority = 1;
  f.signals = std::move(signals);
  return f;
}

TEST(SignalGroupTest, UngroupedSignalsAreIndividualUnits) {
  const Frame f = frame_with({sig("a", 100, SignalKind::kTriggering),
                              sig("b", 200, SignalKind::kTriggering)});
  const auto units = f.delivery_units();
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].name, "a");
  EXPECT_EQ(units[1].name, "b");
  EXPECT_EQ(units[0].members, (std::vector<std::size_t>{0}));
}

TEST(SignalGroupTest, GroupMembersMergeIntoOneUnit) {
  const Frame f = frame_with({sig("a", 100, SignalKind::kTriggering),
                              sig("g1", 200, SignalKind::kPending, "grp"),
                              sig("b", 300, SignalKind::kTriggering),
                              sig("g2", 400, SignalKind::kPending, "grp")});
  const auto units = f.delivery_units();
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].name, "a");
  EXPECT_EQ(units[1].name, "grp");
  EXPECT_EQ(units[1].members, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(units[2].name, "b");
}

TEST(SignalGroupTest, GroupNameCollidingWithSignalNameStaysSeparate) {
  const Frame f = frame_with({sig("grp", 100, SignalKind::kTriggering),
                              sig("g1", 200, SignalKind::kPending, "grp"),
                              sig("g2", 400, SignalKind::kPending, "grp")});
  const auto units = f.delivery_units();
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].members, (std::vector<std::size_t>{0}));   // the signal
  EXPECT_EQ(units[1].members, (std::vector<std::size_t>{1, 2}));  // the group
}

TEST(SignalGroupTest, MixedKindGroupRejected) {
  Frame f = frame_with({sig("t", 100, SignalKind::kTriggering, "grp"),
                        sig("p", 200, SignalKind::kPending, "grp")});
  EXPECT_THROW(f.validate(), std::invalid_argument);
}

TEST(SignalGroupTest, PackedModelHasOneInnerPerUnit) {
  ComLayer layer({frame_with({sig("a", 250, SignalKind::kTriggering),
                              sig("g1", 500, SignalKind::kPending, "grp"),
                              sig("g2", 1000, SignalKind::kPending, "grp")})});
  const auto hem = layer.packed_model(0);
  EXPECT_EQ(hem->inner_count(), 2u);  // "a" and "grp"
}

TEST(SignalGroupTest, GroupDeliveryStreamIsOrOfMembers) {
  // A pending group of two sources: its inner stream is the pending model
  // of the OR of the member sources.
  ComLayer layer({frame_with({sig("a", 250, SignalKind::kTriggering),
                              sig("g1", 500, SignalKind::kPending, "grp"),
                              sig("g2", 1000, SignalKind::kPending, "grp")})});
  const auto hem = layer.packed_model(0);
  const auto& group_inner = hem->inner(1);
  // Group updates arrive at the combined member rate (~1/500 + 1/1000),
  // delivered at most once per frame (~1/250 here).
  const Count updates = group_inner->eta_plus(10'000);
  EXPECT_GE(updates, 28);  // ~30 combined updates
  EXPECT_LE(updates, 41);  // strictly below the 40 frame arrivals
  EXPECT_TRUE(is_infinite(group_inner->delta_plus(2)));
}

TEST(SignalGroupTest, TriggeringGroupTriggersFrames) {
  ComLayer layer({frame_with({sig("g1", 250, SignalKind::kTriggering, "grp"),
                              sig("g2", 400, SignalKind::kTriggering, "grp")})});
  const auto outer = layer.activation_model(0);
  const OrModel expected(StandardEventModel::periodic(250),
                         StandardEventModel::periodic(400));
  EXPECT_TRUE(models_equal(*outer, expected, 24));
  EXPECT_EQ(layer.packed_model(0)->inner_count(), 1u);
}

}  // namespace
}  // namespace hem::com
