#include "com/com_layer.hpp"

#include <gtest/gtest.h>

#include "core/combinators.hpp"
#include "core/standard_event_model.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::com {
namespace {

Signal sig(std::string name, Time period, SignalKind kind) {
  return Signal{std::move(name), StandardEventModel::periodic(period), kind, 1, "", ""};
}

Frame direct_frame(std::string name, std::vector<Signal> signals) {
  Frame f;
  f.name = std::move(name);
  f.type = FrameType::kDirect;
  f.priority = 1;
  f.signals = std::move(signals);
  return f;
}

TEST(ComLayerTest, DirectFrameActivationIsOrOfTriggers) {
  ComLayer layer({direct_frame(
      "F", {sig("a", 250, SignalKind::kTriggering), sig("b", 450, SignalKind::kTriggering),
            sig("c", 1000, SignalKind::kPending)})});
  const auto act = layer.activation_model(0);
  const OrModel expected(StandardEventModel::periodic(250), StandardEventModel::periodic(450));
  EXPECT_TRUE(models_equal(*act, expected, 24));
}

TEST(ComLayerTest, PeriodicFrameActivationIsTheTimer) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kPeriodic;
  f.period = 100;
  f.priority = 1;
  f.signals = {sig("a", 250, SignalKind::kTriggering)};
  ComLayer layer({std::move(f)});
  EXPECT_TRUE(
      models_equal(*layer.activation_model(0), *StandardEventModel::periodic(100), 24));
}

TEST(ComLayerTest, MixedFrameOrsTimerWithTriggers) {
  Frame f;
  f.name = "F";
  f.type = FrameType::kMixed;
  f.period = 500;
  f.priority = 1;
  f.signals = {sig("a", 250, SignalKind::kTriggering)};
  ComLayer layer({std::move(f)});
  const OrModel expected(StandardEventModel::periodic(250), StandardEventModel::periodic(500));
  EXPECT_TRUE(models_equal(*layer.activation_model(0), expected, 24));
}

TEST(ComLayerTest, PackedModelInnerPerSignal) {
  ComLayer layer({direct_frame(
      "F", {sig("a", 250, SignalKind::kTriggering), sig("c", 1000, SignalKind::kPending)})});
  const auto hem = layer.packed_model(0);
  ASSERT_EQ(hem->inner_count(), 2u);
  // Triggering inner equals the signal model.
  EXPECT_TRUE(models_equal(*hem->inner(0), *StandardEventModel::periodic(250), 24));
  // Pending inner has unbounded delta+.
  EXPECT_TRUE(is_infinite(hem->inner(1)->delta_plus(2)));
}

TEST(ComLayerTest, TransmittedAppliesResponseToOuterAndInner) {
  ComLayer layer({direct_frame("F", {sig("a", 250, SignalKind::kTriggering)})});
  const auto before = layer.packed_model(0);
  const auto after = layer.transmitted(0, 4, 6);
  EXPECT_LT(after->inner(0)->delta_min(2), before->inner(0)->delta_min(2));
  EXPECT_GT(after->inner(0)->delta_plus(2), before->inner(0)->delta_plus(2));
  EXPECT_GE(after->outer()->delta_min(2), 4);  // serialised by the bus
}

TEST(ComLayerTest, FlatReceiverModelIsTotalFrameStream) {
  const auto layer = scenarios::make_paper_com_layer();
  const auto flat = layer.flat_receiver_model(0, 4, 6);
  const auto hem = layer.transmitted(0, 4, 6);
  EXPECT_TRUE(models_equal(*flat, *hem->outer(), 24));
}

TEST(ComLayerTest, PaperLayerStructure) {
  const auto layer = scenarios::make_paper_com_layer();
  ASSERT_EQ(layer.frames().size(), 2u);
  EXPECT_EQ(layer.frame(0).name, "F1");
  EXPECT_EQ(layer.frame(0).signals.size(), 3u);
  EXPECT_EQ(layer.frame(0).payload_bytes(), 4);
  EXPECT_EQ(layer.frame(1).payload_bytes(), 2);
  EXPECT_LT(layer.frame(0).priority, layer.frame(1).priority);
}

TEST(ComLayerTest, AnalyzeOnCanMatchesManualAnalysis) {
  const auto layer = scenarios::make_paper_com_layer();
  const auto result = layer.analyze_on_can();
  ASSERT_EQ(result.responses.size(), 2u);
  EXPECT_EQ(result.responses[0].name, "F1");
  EXPECT_EQ(result.responses[0].wcrt, 10);
  EXPECT_EQ(result.responses[1].wcrt, 10);
  // Transmitted HEM carries per-unit inner streams.
  ASSERT_EQ(result.transmitted[0]->inner_count(), 3u);
  EXPECT_TRUE(is_infinite(result.transmitted[0]->inner(2)->delta_plus(2)));
}

TEST(ComLayerTest, AnalyzeOnCanNeedsTransmissionTimes) {
  Frame f = direct_frame("F", {sig("a", 250, SignalKind::kTriggering)});
  f.transmission_time.reset();
  ComLayer layer({std::move(f)});
  EXPECT_THROW(layer.analyze_on_can(), std::invalid_argument);
}

TEST(ComLayerTest, ValidatesOnConstruction) {
  EXPECT_THROW(ComLayer({}), std::invalid_argument);
  Frame bad;
  bad.name = "bad";
  bad.type = FrameType::kDirect;
  bad.signals = {sig("p", 100, SignalKind::kPending)};
  EXPECT_THROW(ComLayer({bad}), std::invalid_argument);
}

}  // namespace
}  // namespace hem::com
