#include "com/can_timing.hpp"

#include <gtest/gtest.h>

namespace hem::com {
namespace {

TEST(CanTimingTest, StandardFrameBits) {
  // 8-byte standard frame: 47 + 64 = 111 bits best, 55 + 80 = 135 worst
  // (the canonical CAN worst-case length).
  EXPECT_EQ(can_frame_bits_best(8), 111);
  EXPECT_EQ(can_frame_bits_worst(8), 135);
  EXPECT_EQ(can_frame_bits_best(0), 47);
  EXPECT_EQ(can_frame_bits_worst(0), 55);
}

TEST(CanTimingTest, ExtendedFrameBits) {
  EXPECT_EQ(can_frame_bits_best(8, CanIdFormat::kExtended29), 131);
  EXPECT_EQ(can_frame_bits_worst(8, CanIdFormat::kExtended29), 160);
}

TEST(CanTimingTest, FrameTimeScalesWithBitTime) {
  // 500 kbit/s with 1 tick = 1 us -> 2 ticks per bit.
  const auto t = can_frame_time(4, 2);
  EXPECT_EQ(t.best, (47 + 32) * 2);
  EXPECT_EQ(t.worst, (55 + 40) * 2);
  EXPECT_LE(t.best, t.worst);
}

TEST(CanTimingTest, MonotoneInPayload) {
  for (int s = 1; s <= 8; ++s) {
    EXPECT_GT(can_frame_bits_best(s), can_frame_bits_best(s - 1));
    EXPECT_GT(can_frame_bits_worst(s), can_frame_bits_worst(s - 1));
    EXPECT_GE(can_frame_bits_worst(s), can_frame_bits_best(s));
  }
}

TEST(CanTimingTest, RejectsInvalidArguments) {
  EXPECT_THROW((void)can_frame_bits_best(-1), std::invalid_argument);
  EXPECT_THROW((void)can_frame_bits_worst(9), std::invalid_argument);
  EXPECT_THROW((void)can_frame_time(4, 0), std::invalid_argument);
}

TEST(CanFdTimingTest, FasterDataPhaseShortensLargeFrames) {
  // 64-byte FD frame at 500k/2M (arb 4 ticks/bit, data 1 tick/bit) vs a
  // hypothetical all-arbitration-speed transmission.
  const auto fd = can_fd_frame_time(64, 4, 1);
  const auto slow = can_fd_frame_time(64, 4, 4);
  EXPECT_LT(fd.worst, slow.worst);
  EXPECT_LE(fd.best, fd.worst);
}

TEST(CanFdTimingTest, MonotoneInPayload) {
  for (int s = 1; s <= 64; ++s) {
    EXPECT_GE(can_fd_frame_time(s, 4, 1).worst, can_fd_frame_time(s - 1, 4, 1).worst);
    EXPECT_GE(can_fd_frame_time(s, 4, 1).best, can_fd_frame_time(s - 1, 4, 1).best);
  }
}

TEST(CanFdTimingTest, RejectsInvalidArguments) {
  EXPECT_THROW((void)can_fd_frame_time(65, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)can_fd_frame_time(8, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)can_fd_frame_time(8, 1, 2), std::invalid_argument);  // data slower than arb
}

TEST(EthernetTimingTest, MinimumFramePadding) {
  // Anything below 46 bytes is padded: same wire time.
  const auto tiny = ethernet_frame_time(1, 2);
  const auto min_frame = ethernet_frame_time(46, 2);
  EXPECT_EQ(tiny.worst, min_frame.worst);
  // 84 wire bytes at 2 ticks/byte.
  EXPECT_EQ(min_frame.worst, 84 * 2);
  EXPECT_EQ(min_frame.best, min_frame.worst);  // deterministic
}

TEST(EthernetTimingTest, FullFrame) {
  // 1500-byte payload -> 1538 wire bytes.
  EXPECT_EQ(ethernet_frame_time(1500, 1).worst, 1538);
  EXPECT_THROW((void)ethernet_frame_time(1501, 1), std::invalid_argument);
  EXPECT_THROW((void)ethernet_frame_time(100, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hem::com
