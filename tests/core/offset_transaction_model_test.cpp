#include "core/offset_transaction_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"

namespace hem {
namespace {

TEST(OffsetTransactionModelTest, SingleOffsetIsPeriodic) {
  const OffsetTransactionModel m(100, {0});
  const auto p = StandardEventModel::periodic(100);
  EXPECT_TRUE(models_equal(m, *p, 32));
}

TEST(OffsetTransactionModelTest, TwoOffsetsExactCurves) {
  // Events at m*100 + {0, 30}: gaps alternate 30, 70.
  const OffsetTransactionModel m(100, {0, 30});
  EXPECT_EQ(m.delta_min(2), 30);
  EXPECT_EQ(m.delta_plus(2), 70);
  EXPECT_EQ(m.delta_min(3), 100);
  EXPECT_EQ(m.delta_plus(3), 100);
  EXPECT_EQ(m.delta_min(4), 130);
  EXPECT_EQ(m.delta_plus(4), 170);
}

TEST(OffsetTransactionModelTest, JitterWidensCurves) {
  const OffsetTransactionModel smooth(100, {0, 30});
  const OffsetTransactionModel jittered(100, {0, 30}, 10);
  for (Count n = 2; n <= 16; ++n) {
    EXPECT_EQ(jittered.delta_min(n), std::max<Time>(0, smooth.delta_min(n) - 10));
    EXPECT_EQ(jittered.delta_plus(n), smooth.delta_plus(n) + 10);
  }
}

TEST(OffsetTransactionModelTest, UnsortedOffsetsAreSorted) {
  const OffsetTransactionModel a(100, {30, 0});
  const OffsetTransactionModel b(100, {0, 30});
  EXPECT_TRUE(models_equal(a, b, 16));
}

TEST(OffsetTransactionModelTest, EtaPlusSeesOffsetClusters) {
  // Cluster at the period start: {0, 5, 10}, then nothing until 100.
  const OffsetTransactionModel m(100, {0, 5, 10});
  EXPECT_EQ(m.eta_plus(1), 1);
  EXPECT_EQ(m.eta_plus(6), 2);
  EXPECT_EQ(m.eta_plus(11), 3);
  EXPECT_EQ(m.eta_plus(100), 3);
  EXPECT_EQ(m.eta_plus(101), 4);
}

TEST(OffsetTransactionModelTest, OffsetsDeBurstAgainstSem) {
  // Same rate as SEM(33, 0) roughly, but the offsets guarantee spacing:
  // a SEM covering 3 events per 100 must allow bursts the offsets exclude.
  const OffsetTransactionModel offsets(100, {0, 33, 66});
  EXPECT_EQ(offsets.delta_min(2), 33);
  EXPECT_EQ(offsets.delta_plus(2), 34);
}

TEST(OffsetTransactionModelTest, TraceConformance) {
  const Time period = 200, jitter = 8;
  const std::vector<Time> offsets{10, 50, 120};
  const OffsetTransactionModel m(period, offsets, jitter);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<Time> x(0, jitter);
  for (int run = 0; run < 20; ++run) {
    std::vector<Time> events;
    for (Time base = 0; base < 20'000; base += period)
      for (const Time o : offsets) events.push_back(base + o + x(rng));
    std::sort(events.begin(), events.end());
    const TraceModel observed(events);
    for (Count n = 2; n <= 40; ++n) {
      ASSERT_GE(observed.delta_min(n), m.delta_min(n)) << "run=" << run << " n=" << n;
      ASSERT_LE(observed.delta_plus(n), m.delta_plus(n)) << "run=" << run << " n=" << n;
    }
  }
}

TEST(OffsetTransactionModelTest, ValidationErrors) {
  EXPECT_THROW(OffsetTransactionModel(0, {0}), std::invalid_argument);
  EXPECT_THROW(OffsetTransactionModel(100, {}), std::invalid_argument);
  EXPECT_THROW(OffsetTransactionModel(100, {100}), std::invalid_argument);
  EXPECT_THROW(OffsetTransactionModel(100, {-5}), std::invalid_argument);
  EXPECT_THROW(OffsetTransactionModel(100, {0, 30}, -1), std::invalid_argument);
  // Jitter 40 > min gap 30: order instability rejected.
  EXPECT_THROW(OffsetTransactionModel(100, {0, 30}, 40), std::invalid_argument);
}

}  // namespace
}  // namespace hem
