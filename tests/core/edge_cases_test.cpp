// Cross-module edge cases: infinities flowing through combinators, fitting
// exotic models, deep composition chains.

#include <gtest/gtest.h>

#include "core/combinators.hpp"
#include "core/delta_function_model.hpp"
#include "core/grouped_stream_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/output_model.hpp"
#include "core/sem_fit.hpp"
#include "core/standard_event_model.hpp"
#include "hierarchical/pack_constructor.hpp"

namespace hem {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

ModelPtr pending_like(Time d) {
  // delta- = (n-1)*d, delta+ = infinity.
  return std::make_shared<DeltaFunctionModel>(std::vector<Time>{d},
                                              std::vector<Time>{kTimeInfinity}, 1, d);
}

TEST(EdgeCases, OrWithInfiniteDeltaPlusChild) {
  // OR of a regular stream and a pending-style stream: delta+ of the union
  // is capped by the regular stream.
  const OrModel m(periodic(100), pending_like(300));
  EXPECT_EQ(m.delta_plus(2), 100);
  for (Count n = 2; n <= 24; ++n) {
    EXPECT_FALSE(is_infinite(m.delta_plus(n))) << n;
    EXPECT_LE(m.delta_min(n), m.delta_plus(n)) << n;
  }
}

TEST(EdgeCases, OrOfTwoPendingStreamsKeepsInfinity) {
  const OrModel m(pending_like(100), pending_like(200));
  EXPECT_TRUE(is_infinite(m.delta_plus(2)));
  EXPECT_EQ(m.eta_minus(1'000'000), 0);
}

TEST(EdgeCases, DeepOrChainStaysConsistent) {
  std::vector<ModelPtr> inputs;
  for (int i = 0; i < 12; ++i) inputs.push_back(periodic(100 + 13 * i));
  const auto m = or_combine(inputs);
  Count prev = 0;
  for (Time dt = 0; dt <= 2000; dt += 50) {
    const Count v = m->eta_plus(dt);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_EQ(m->eta_plus(1), 12);  // all twelve can coincide
}

TEST(EdgeCases, OutputOfPendingKeepsInfiniteDeltaPlus) {
  const OutputModel out(pending_like(500), 4, 9);
  EXPECT_TRUE(is_infinite(out.delta_plus(2)));
  EXPECT_EQ(out.delta_min(2), 495);
}

TEST(EdgeCases, FitSemOnOffsetsIsConservative) {
  const OffsetTransactionModel m(300, {0, 20, 40}, 5);
  const auto fitted = fit_sem(m);
  for (Time dt = 1; dt <= 2000; dt += 7)
    EXPECT_GE(fitted->eta_plus(dt), m.eta_plus(dt)) << dt;
}

TEST(EdgeCases, FitSemOnLeakyBucket) {
  const LeakyBucketModel m(4, 25);
  const auto fitted = fit_sem(m);
  for (Time dt = 1; dt <= 1000; dt += 7)
    EXPECT_GE(fitted->eta_plus(dt), m.eta_plus(dt)) << dt;
}

TEST(EdgeCases, GroupedOverOrOuter) {
  // Grouped bursts riding an OR-combined release stream.
  const auto outer = std::make_shared<OrModel>(periodic(100), periodic(170));
  const GroupedStreamModel m(outer, 2, 3);
  for (Count n = 3; n <= 32; ++n) {
    EXPECT_LE(m.delta_min(n - 1), m.delta_min(n));
    EXPECT_LE(m.delta_min(n), m.delta_plus(n));
  }
  EXPECT_EQ(m.eta_plus(1), 4);  // 2 groups x 2 events can coincide
}

TEST(EdgeCases, PackOfOutputsComposes) {
  // Pack the outputs of analysed tasks (the gateway pattern) and verify
  // simultaneity bookkeeping survives the chain.
  const auto out_a = std::make_shared<OutputModel>(periodic(100), 2, 7);
  const auto out_b = std::make_shared<OutputModel>(periodic(150), 1, 4);
  const auto hem = pack({{out_a, SignalCoupling::kTriggering},
                         {out_b, SignalCoupling::kTriggering}});
  EXPECT_EQ(hem->outer()->max_simultaneous_events(), 2);
  const auto after = hem->after_response(3, 8);
  for (Count n = 2; n <= 16; ++n)
    EXPECT_LE(after->inner(0)->delta_min(n), out_a->delta_min(n)) << n;
}

TEST(EdgeCases, DminEqualsPeriodIsStrictlyPeriodic) {
  const auto m = StandardEventModel::sporadic(100, 0, 100);
  EXPECT_TRUE(models_equal(*m, *periodic(100), 48));
}

TEST(EdgeCases, SaturatedDistancesStayMonotone) {
  // Extension with infinite time: everything beyond the prefix saturates.
  DeltaFunctionModel m({10, 20}, {15, 30}, 1, kTimeInfinity);
  EXPECT_TRUE(is_infinite(m.delta_min(10)));
  EXPECT_TRUE(is_infinite(m.delta_plus(10)));
  EXPECT_EQ(m.eta_plus(1'000'000), 3);  // only the prefix events exist
}

}  // namespace
}  // namespace hem
