#include "core/delta_function_model.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem {
namespace {

TEST(DeltaFunctionModelTest, PrefixValuesAreReturnedVerbatim) {
  DeltaFunctionModel m({10, 25, 40}, {20, 50, 80}, 3, 40);
  EXPECT_EQ(m.delta_min(2), 10);
  EXPECT_EQ(m.delta_min(3), 25);
  EXPECT_EQ(m.delta_min(4), 40);
  EXPECT_EQ(m.delta_plus(2), 20);
  EXPECT_EQ(m.delta_plus(4), 80);
}

TEST(DeltaFunctionModelTest, ExtensionAddsLinearPeriods) {
  // Extension: 3 events per 40 ticks.
  DeltaFunctionModel m({10, 25, 40}, {20, 50, 80}, 3, 40);
  EXPECT_EQ(m.delta_min(5), m.delta_min(2) + 40);  // 5 = 2 + 3
  EXPECT_EQ(m.delta_min(7), m.delta_min(4) + 40);
  EXPECT_EQ(m.delta_min(10), m.delta_min(4) + 2 * 40);
  EXPECT_EQ(m.delta_plus(8), m.delta_plus(2) + 2 * 40);
}

TEST(DeltaFunctionModelTest, ExtensionBelowPrefixBaseUsesZero) {
  // n - periods*q may fall below 2; the base is then delta(n<2) = 0.
  DeltaFunctionModel m({10}, {10}, 1, 10);  // periodic-like: one stored value
  EXPECT_EQ(m.delta_min(2), 10);
  EXPECT_EQ(m.delta_min(3), 20);
  EXPECT_EQ(m.delta_min(12), 110);
}

TEST(DeltaFunctionModelTest, ValidationRejectsBadCurves) {
  EXPECT_THROW(DeltaFunctionModel({}, {}, 1, 10), std::invalid_argument);
  EXPECT_THROW(DeltaFunctionModel({10, 5}, {20, 20}, 1, 10), std::invalid_argument);  // not monotone
  EXPECT_THROW(DeltaFunctionModel({10}, {5}, 1, 10), std::invalid_argument);  // dmin > dplus
  EXPECT_THROW(DeltaFunctionModel({10}, {10, 20}, 1, 10), std::invalid_argument);  // len mismatch
  EXPECT_THROW(DeltaFunctionModel({10}, {10}, 0, 10), std::invalid_argument);  // bad ext
  EXPECT_THROW(DeltaFunctionModel({-1}, {5}, 1, 10), std::invalid_argument);   // negative
}

TEST(DeltaFunctionModelTest, ValidationRejectsNonMonotoneExtension) {
  // Stepping back 1 event adds only 1 tick but the curve grows by 30.
  EXPECT_THROW(DeltaFunctionModel({10, 40}, {10, 40}, 1, 1), std::invalid_argument);
}

TEST(PeriodicBurstTest, MatchesHandComputedPattern) {
  // Bursts of 3 events, 10 apart, every 100: events at 0,10,20, 100,110,120, ...
  const auto m = DeltaFunctionModel::periodic_burst(3, 10, 100);
  EXPECT_EQ(m->delta_min(2), 10);
  EXPECT_EQ(m->delta_min(3), 20);
  EXPECT_EQ(m->delta_min(4), 100);  // must wrap the outer period
  EXPECT_EQ(m->delta_min(5), 110);
  EXPECT_EQ(m->delta_min(7), 200);
  // Max spans: a window straddling the inter-burst gap.
  EXPECT_EQ(m->delta_plus(2), 80);   // event 20 -> event 100
  EXPECT_EQ(m->delta_plus(3), 90);   // event 10 -> event 100... spans 90? (10,20,100)
  EXPECT_EQ(m->delta_plus(4), 100);  // any 4 consecutive span exactly 100
}

TEST(PeriodicBurstTest, EtaPlusSeesTheBurst) {
  const auto m = DeltaFunctionModel::periodic_burst(3, 10, 100);
  EXPECT_EQ(m->eta_plus(1), 1);
  EXPECT_EQ(m->eta_plus(11), 2);
  EXPECT_EQ(m->eta_plus(21), 3);
  EXPECT_EQ(m->eta_plus(100), 3);
  EXPECT_EQ(m->eta_plus(101), 4);
}

TEST(PeriodicBurstTest, SemOverapproximatesTheBurst) {
  // The classic motivation for curves: any SEM covering this burst must
  // allow more events somewhere.  The burst fits SEM(P=100/3~34 would be
  // wrong); the standard fit is P=100/3 impossible with integers -> compare
  // against the jitter fit P=33, J=?  Instead check the weaker, exact
  // property: the burst's own eta+ is a lower envelope of the SEM fit
  // eta+ with P=33, J=47, dmin=10.
  const auto burst = DeltaFunctionModel::periodic_burst(3, 10, 100);
  const auto sem = StandardEventModel::sporadic(33, 47, 10);
  for (Time dt = 1; dt <= 600; dt += 3)
    EXPECT_LE(burst->eta_plus(dt), sem->eta_plus(dt)) << "dt=" << dt;
}

TEST(PeriodicBurstTest, SingleEventBurstIsPeriodic) {
  const auto m = DeltaFunctionModel::periodic_burst(1, 0, 50);
  const auto p = StandardEventModel::periodic(50);
  EXPECT_TRUE(models_equal(*m, *p, 40));
}

TEST(PeriodicBurstTest, RejectsOversizedBurst) {
  EXPECT_THROW(DeltaFunctionModel::periodic_burst(3, 60, 100), std::invalid_argument);
  EXPECT_THROW(DeltaFunctionModel::periodic_burst(0, 10, 100), std::invalid_argument);
}

}  // namespace
}  // namespace hem
