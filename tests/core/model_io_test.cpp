#include "core/model_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/standard_event_model.hpp"

namespace hem {
namespace {

TEST(ModelIoTest, FormatTime) {
  EXPECT_EQ(format_time(42), "42");
  EXPECT_EQ(format_time(0), "0");
  EXPECT_EQ(format_time(kTimeInfinity), "inf");
  EXPECT_EQ(format_time(kTimeInfinity + 7), "inf");
}

TEST(ModelIoTest, SampleEtaPlusGrid) {
  const auto m = StandardEventModel::periodic(100);
  const auto s = sample_eta_plus(*m, "p100", 500, 100);
  ASSERT_EQ(s.dt.size(), 5u);
  EXPECT_EQ(s.dt.front(), 100);
  EXPECT_EQ(s.dt.back(), 500);
  EXPECT_EQ(s.value[0], 1);
  EXPECT_EQ(s.value[4], 5);
  EXPECT_EQ(s.label, "p100");
}

TEST(ModelIoTest, SampleEtaPlusRejectsBadGrid) {
  const auto m = StandardEventModel::periodic(100);
  EXPECT_THROW(sample_eta_plus(*m, "x", 500, 0), std::invalid_argument);
  EXPECT_THROW(sample_eta_plus(*m, "x", 50, 100), std::invalid_argument);
}

TEST(ModelIoTest, FormatEtaTableAlignsSeries) {
  const auto a = StandardEventModel::periodic(100);
  const auto b = StandardEventModel::periodic(50);
  const auto table =
      format_eta_table({sample_eta_plus(*a, "A", 200, 100), sample_eta_plus(*b, "B", 200, 100)});
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("B"), std::string::npos);
  // Rows: header + 2 samples.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

TEST(ModelIoTest, FormatEtaTableRejectsMismatchedSeries) {
  const auto a = StandardEventModel::periodic(100);
  EXPECT_THROW(format_eta_table(
                   {sample_eta_plus(*a, "A", 200, 100), sample_eta_plus(*a, "B", 300, 100)}),
               std::invalid_argument);
}

TEST(ModelIoTest, WriteEtaCsv) {
  const auto a = StandardEventModel::periodic(100);
  std::ostringstream os;
  write_eta_csv(os, {sample_eta_plus(*a, "A", 200, 100)});
  EXPECT_EQ(os.str(), "dt,A\n100,1\n200,2\n");
}

TEST(ModelIoTest, FormatDeltaTableShowsInfinity) {
  const auto m = StandardEventModel::periodic(100);
  const auto table = format_delta_table(*m, 4);
  EXPECT_NE(table.find("delta-"), std::string::npos);
  EXPECT_NE(table.find("300"), std::string::npos);
}

}  // namespace
}  // namespace hem
