#include "core/combinators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"

namespace hem {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(OrModelTest, TwoEqualPeriodicStreams) {
  const OrModel m(periodic(100), periodic(100));
  // Two independent periodic streams: events can coincide.
  EXPECT_EQ(m.delta_min(2), 0);
  // Three events: at least two from one stream -> at least 100 apart.
  EXPECT_EQ(m.delta_min(3), 100);
  EXPECT_EQ(m.delta_min(4), 100);
  EXPECT_EQ(m.delta_min(5), 200);
  // Max distance between 2 combined events: at most min of the two gaps.
  EXPECT_EQ(m.delta_plus(2), 100);
}

TEST(OrModelTest, RateAddsUp) {
  const OrModel m(periodic(100), periodic(100));
  // Long-run: 2 events per 100 ticks.
  EXPECT_EQ(m.eta_plus(1001), 22);  // 11 per stream
  EXPECT_EQ(m.eta_minus(1000), 20);
}

TEST(OrModelTest, AsymmetricPeriods) {
  const OrModel m(periodic(250), periodic(450));
  EXPECT_EQ(m.delta_min(2), 0);
  EXPECT_EQ(m.delta_min(3), 250);  // contribution (2,1) wins
  EXPECT_EQ(m.delta_plus(2), 250); // within any 250 window a 250-stream event falls
}

TEST(OrModelTest, MatchesBruteForceOverContributionVectors) {
  const auto a = StandardEventModel::sporadic(100, 120, 10);
  const auto b = StandardEventModel::sporadic(70, 30, 7);
  const OrModel m(a, b);
  for (Count n = 2; n <= 24; ++n) {
    Time expect_min = kTimeInfinity;
    for (Count k = 0; k <= n; ++k)
      expect_min = std::min(expect_min, std::max(a->delta_min(k), b->delta_min(n - k)));
    ASSERT_EQ(m.delta_min(n), expect_min) << "n=" << n;

    Time expect_plus = 0;
    for (Count k = 0; k <= n - 2; ++k)
      expect_plus = std::max(expect_plus, std::min(a->delta_plus(k + 2), b->delta_plus(n - k)));
    ASSERT_EQ(m.delta_plus(n), expect_plus) << "n=" << n;
  }
}

TEST(OrModelTest, BoundsConcreteMergedTraces) {
  // Any concrete interleaving of conforming traces must respect the OR
  // bounds, for arbitrary phases.
  const auto a = StandardEventModel::periodic(100);
  const auto b = StandardEventModel::periodic(170);
  const OrModel m(a, b);
  std::mt19937_64 rng(13);
  // Phases stay below one period so both streams are in steady state from
  // t = 0 (the OR model describes permanently active streams).
  std::uniform_int_distribution<Time> phase_a(0, 99), phase_b(0, 169);
  for (int run = 0; run < 25; ++run) {
    std::vector<Time> merged;
    const Time pa = phase_a(rng), pb = phase_b(rng);
    for (Time t = pa; t < 6000; t += 100) merged.push_back(t);
    for (Time t = pb; t < 6000; t += 170) merged.push_back(t);
    std::sort(merged.begin(), merged.end());
    const TraceModel observed(merged);
    for (Count n = 2; n <= 30; ++n) {
      ASSERT_GE(observed.delta_min(n), m.delta_min(n)) << "n=" << n << " run=" << run;
      if (!is_infinite(observed.delta_plus(n)) &&
          static_cast<Count>(merged.size()) - n > 10) {  // skip truncated windows
        ASSERT_LE(observed.delta_plus(n), m.delta_plus(n)) << "n=" << n << " run=" << run;
      }
    }
  }
}

TEST(OrModelTest, FoldIsAssociative) {
  const auto a = StandardEventModel::sporadic(100, 50, 5);
  const auto b = StandardEventModel::periodic(170);
  const auto c = StandardEventModel::sporadic(300, 10, 10);
  const auto left = std::make_shared<OrModel>(std::make_shared<OrModel>(a, b), c);
  const auto right = std::make_shared<OrModel>(a, std::make_shared<OrModel>(b, c));
  EXPECT_TRUE(models_equal(*left, *right, 24));
}

TEST(OrModelTest, OrCombineSingleInputIsIdentity) {
  const auto a = periodic(100);
  const std::vector<ModelPtr> one{a};
  EXPECT_EQ(or_combine(one).get(), a.get());
}

TEST(OrModelTest, OrCombineRejectsEmpty) {
  const std::vector<ModelPtr> none;
  EXPECT_THROW(or_combine(none), std::invalid_argument);
  EXPECT_THROW(OrModel(nullptr, periodic(10)), std::invalid_argument);
}

TEST(OrModelTest, SimultaneityCountsAdd) {
  const OrModel m(periodic(100), periodic(200));
  EXPECT_EQ(m.eta_plus(1), 2);  // one of each can coincide
  const auto three = or_combine(
      std::vector<ModelPtr>{periodic(100), periodic(200), periodic(300)});
  EXPECT_EQ(three->eta_plus(1), 3);
}

TEST(AndModelTest, CommonPeriodCombines) {
  const auto a = StandardEventModel::sporadic(100, 30, 10);
  const auto b = StandardEventModel::sporadic(100, 50, 20);
  const auto m = and_combine(std::vector<ModelPtr>{a, b});
  const auto* sem = dynamic_cast<const StandardEventModel*>(m.get());
  ASSERT_NE(sem, nullptr);
  EXPECT_EQ(sem->period(), 100);
  EXPECT_EQ(sem->jitter(), 50);   // max jitter
  EXPECT_EQ(sem->d_min(), 10);    // min dmin (conservative)
}

TEST(AndModelTest, RejectsMismatchedPeriods) {
  const auto a = periodic(100);
  const auto b = periodic(150);
  EXPECT_THROW(and_combine(std::vector<ModelPtr>{a, b}), std::invalid_argument);
}

TEST(AndModelTest, RejectsNonSemInputs) {
  const auto a = periodic(100);
  const auto o = std::make_shared<OrModel>(a, a);
  EXPECT_THROW(and_combine(std::vector<ModelPtr>{a, o}), std::invalid_argument);
}

}  // namespace
}  // namespace hem
