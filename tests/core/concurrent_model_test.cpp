// Concurrency stress tests of the lock-free model-cache hot path: many
// threads hammer the SAME EventModel / OutputModel nodes and every answer
// must match a single-threaded reference evaluated on an identical but
// private model.  Built to run under TSan (the CI tsan job includes this
// suite): the segmented memo cache (core/curve_cache.hpp) and the
// OutputModel recursion arena publish with acquire/release, so any missing
// ordering shows up as a data-race report here.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/combinators.hpp"
#include "core/curve_cache.hpp"
#include "core/output_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem {
namespace {

constexpr int kThreads = 8;
constexpr Count kMaxN = 600;

/// A small output-model chain over an OR of jittered sources — the shape
/// the engine queries hottest (gateway task outputs).
ModelPtr make_chain() {
  std::vector<ModelPtr> sources = {
      StandardEventModel::periodic_with_jitter(100, 30),
      StandardEventModel::periodic_with_jitter(70, 15),
      StandardEventModel::sporadic(250, 40, 50),
  };
  ModelPtr m = or_combine(sources);
  m = std::make_shared<OutputModel>(m, 5, 40);
  m = std::make_shared<OutputModel>(m, 2, 25);
  return m;
}

/// Run `fn(thread_rank)` on kThreads threads after a start barrier, so all
/// threads hit the cold caches together.
void hammer(const std::function<void(int)>& fn) {
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      fn(w);
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(ConcurrentModelStressTest, SharedChainMatchesSerialReference) {
  const ModelPtr reference = make_chain();  // queried single-threaded only
  std::vector<Time> ref_dmin(static_cast<std::size_t>(kMaxN) + 1, 0);
  std::vector<Time> ref_dplus(static_cast<std::size_t>(kMaxN) + 1, 0);
  for (Count n = 2; n <= kMaxN; ++n) {
    ref_dmin[static_cast<std::size_t>(n)] = reference->delta_min(n);
    ref_dplus[static_cast<std::size_t>(n)] = reference->delta_plus(n);
  }

  const ModelPtr shared = make_chain();
  std::atomic<int> mismatches{0};
  hammer([&](int rank) {
    // Each thread walks the index space in a different order: even ranks
    // ascend, odd ranks descend, with a rank-dependent stride so threads
    // collide on cold slots instead of marching in lockstep.
    const Count stride = 1 + rank % 3;
    for (Count i = 0; i <= kMaxN; i += stride) {
      const Count n = 2 + (rank % 2 == 0 ? i : kMaxN - i) % (kMaxN - 1);
      if (shared->delta_min(n) != ref_dmin[static_cast<std::size_t>(n)]) mismatches++;
      if (shared->delta_plus(n) != ref_dplus[static_cast<std::size_t>(n)]) mismatches++;
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentModelStressTest, EtaQueriesRaceDeltaQueries) {
  const ModelPtr reference = make_chain();
  std::vector<Count> ref_eta;
  for (Time dt = 1; dt <= 4000; dt += 37) ref_eta.push_back(reference->eta_plus(dt));

  const ModelPtr shared = make_chain();
  std::atomic<int> mismatches{0};
  hammer([&](int rank) {
    if (rank % 2 == 0) {
      // eta+ gallops over delta- internally: racing it against direct
      // delta queries exercises concurrent growth of the same cache.
      std::size_t k = 0;
      for (Time dt = 1; dt <= 4000; dt += 37, ++k)
        if (shared->eta_plus(dt) != ref_eta[k]) mismatches++;
    } else {
      for (Count n = kMaxN; n >= 2; --n) (void)shared->delta_min(n);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentModelStressTest, OutputRecursionPrefixIsConsistent) {
  // Deep recursion prefix: concurrent extenders publish overlapping
  // prefixes via CAS-max; every published slot must already carry its
  // final value.
  const ModelPtr reference =
      std::make_shared<OutputModel>(StandardEventModel::periodic_with_jitter(50, 200), 3, 90);
  std::vector<Time> ref(static_cast<std::size_t>(kMaxN) + 1, 0);
  for (Count n = 2; n <= kMaxN; ++n) ref[static_cast<std::size_t>(n)] = reference->delta_min(n);

  const ModelPtr shared =
      std::make_shared<OutputModel>(StandardEventModel::periodic_with_jitter(50, 200), 3, 90);
  std::atomic<int> mismatches{0};
  hammer([&](int rank) {
    // Ranks start at different depths, so some threads extend while others
    // read back published prefixes.
    for (Count n = 2 + rank * 71 % 200; n <= kMaxN; ++n)
      if (shared->delta_min(n) != ref[static_cast<std::size_t>(n)]) mismatches++;
    for (Count n = kMaxN; n >= 2; n -= 7)
      if (shared->delta_min(n) != ref[static_cast<std::size_t>(n)]) mismatches++;
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(AtomicCurveCacheTest, StoreThenLoadRoundTrips) {
  AtomicCurveCache cache;
  EXPECT_EQ(cache.load(0), AtomicCurveCache::kUnset);
  EXPECT_EQ(cache.store(0, 42), AtomicCurveCache::StoreResult::kStored);
  EXPECT_EQ(cache.load(0), 42);
  EXPECT_EQ(cache.store(0, 42), AtomicCurveCache::StoreResult::kDuplicate);
  // Far index lands in a high segment, untouched slots stay unset.
  EXPECT_EQ(cache.store(100000, 7), AtomicCurveCache::StoreResult::kStored);
  EXPECT_EQ(cache.load(100000), 7);
  EXPECT_EQ(cache.load(99999), AtomicCurveCache::kUnset);
  EXPECT_EQ(cache.store(AtomicCurveCache::kCapacity, 1),
            AtomicCurveCache::StoreResult::kOverflow);
}

TEST(AtomicCurveCacheTest, StoreReportsOnlyItsOwnSegmentAllocations) {
  // The allocated out-param must report THIS call's segment publication,
  // never a cache-wide delta: counter attribution used to diff
  // `allocations()` around a store, misattributing concurrent work units'
  // allocations to whichever publish happened to observe them.
  AtomicCurveCache cache;
  bool allocated = false;
  EXPECT_EQ(cache.store(0, 11, allocated), AtomicCurveCache::StoreResult::kStored);
  EXPECT_TRUE(allocated);  // first touch of segment 0
  EXPECT_EQ(cache.store(1, 22, allocated), AtomicCurveCache::StoreResult::kStored);
  EXPECT_FALSE(allocated);  // segment 0 already exists
  EXPECT_EQ(cache.store(0, 11, allocated), AtomicCurveCache::StoreResult::kDuplicate);
  EXPECT_FALSE(allocated);
  // A far index publishes a fresh segment exactly once.
  EXPECT_EQ(cache.store(100000, 7, allocated), AtomicCurveCache::StoreResult::kStored);
  EXPECT_TRUE(allocated);
  EXPECT_EQ(cache.store(100001, 8, allocated), AtomicCurveCache::StoreResult::kStored);
  EXPECT_FALSE(allocated);
}

TEST(AtomicCurveCacheTest, ConcurrentFillIsLossless) {
  AtomicCurveCache cache;
  constexpr std::size_t kSlots = 20000;
  hammer([&](int rank) {
    for (std::size_t i = static_cast<std::size_t>(rank); i < kSlots; i += kThreads)
      (void)cache.store(i, static_cast<Time>(i) * 3);
    for (std::size_t i = 0; i < kSlots; ++i) {
      const Time v = cache.load(i);
      if (v != AtomicCurveCache::kUnset) ASSERT_EQ(v, static_cast<Time>(i) * 3);
    }
  });
  for (std::size_t i = 0; i < kSlots; ++i) ASSERT_EQ(cache.load(i), static_cast<Time>(i) * 3);
  EXPECT_GT(cache.allocations(), 0);
}

}  // namespace
}  // namespace hem
