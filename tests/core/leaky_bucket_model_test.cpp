#include "core/leaky_bucket_model.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sched/spp.hpp"

namespace hem {
namespace {

TEST(LeakyBucketModelTest, DeltaCurves) {
  const LeakyBucketModel m(3, 10);
  EXPECT_EQ(m.delta_min(2), 0);
  EXPECT_EQ(m.delta_min(3), 0);
  EXPECT_EQ(m.delta_min(4), 10);
  EXPECT_EQ(m.delta_min(10), 70);
  EXPECT_TRUE(is_infinite(m.delta_plus(2)));
}

TEST(LeakyBucketModelTest, EtaPlusIsAffine) {
  const LeakyBucketModel m(3, 10);
  EXPECT_EQ(m.eta_plus(1), 3);
  EXPECT_EQ(m.eta_plus(10), 3);
  EXPECT_EQ(m.eta_plus(11), 4);
  EXPECT_EQ(m.eta_plus(101), 13);
  EXPECT_EQ(m.eta_minus(1'000'000), 0);  // no lower bound
}

TEST(LeakyBucketModelTest, BucketOfOneIsSporadic) {
  const LeakyBucketModel bucket(1, 25);
  // delta-(n) = (n-1)*25, same eta+ as a sporadic stream with dmin 25.
  const auto sporadic = StandardEventModel::sporadic(25, 0, 25);
  for (Time dt = 1; dt <= 500; dt += 7)
    EXPECT_EQ(bucket.eta_plus(dt), sporadic->eta_plus(dt)) << dt;
}

TEST(LeakyBucketModelTest, DrivesInterferenceAnalysis) {
  // A leaky-bucket interferer in a response-time analysis.
  sched::SppAnalysis a({
      sched::TaskParams{"bucket", 1, sched::ExecutionTime(2),
                        std::make_shared<LeakyBucketModel>(3, 50)},
      sched::TaskParams{"victim", 2, sched::ExecutionTime(5),
                        StandardEventModel::periodic(200)},
  });
  // Victim: burst of 3 x 2 up front, then drained: w = 5 + 6 = 11.
  EXPECT_EQ(a.analyze(1).wcrt, 11);
}

TEST(LeakyBucketModelTest, ValidationErrors) {
  EXPECT_THROW(LeakyBucketModel(0, 10), std::invalid_argument);
  EXPECT_THROW(LeakyBucketModel(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace hem
