#include "core/standard_event_model.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace hem {
namespace {

TEST(StandardEventModelTest, PeriodicDeltaCurves) {
  const auto m = StandardEventModel::periodic(100);
  EXPECT_EQ(m->delta_min(0), 0);
  EXPECT_EQ(m->delta_min(1), 0);
  EXPECT_EQ(m->delta_min(2), 100);
  EXPECT_EQ(m->delta_min(5), 400);
  EXPECT_EQ(m->delta_plus(2), 100);
  EXPECT_EQ(m->delta_plus(5), 400);
}

TEST(StandardEventModelTest, PeriodicEtaPlus) {
  const auto m = StandardEventModel::periodic(100);
  EXPECT_EQ(m->eta_plus(0), 0);
  EXPECT_EQ(m->eta_plus(1), 1);
  EXPECT_EQ(m->eta_plus(100), 1);
  EXPECT_EQ(m->eta_plus(101), 2);
  EXPECT_EQ(m->eta_plus(200), 2);
  EXPECT_EQ(m->eta_plus(201), 3);
  EXPECT_EQ(m->eta_plus(1000), 10);
}

TEST(StandardEventModelTest, PeriodicEtaMinus) {
  const auto m = StandardEventModel::periodic(100);
  EXPECT_EQ(m->eta_minus(0), 0);
  EXPECT_EQ(m->eta_minus(99), 0);
  EXPECT_EQ(m->eta_minus(100), 1);
  EXPECT_EQ(m->eta_minus(199), 1);
  EXPECT_EQ(m->eta_minus(200), 2);
}

TEST(StandardEventModelTest, JitterShiftsCurves) {
  const auto m = StandardEventModel::periodic_with_jitter(100, 30);
  EXPECT_EQ(m->delta_min(2), 70);
  EXPECT_EQ(m->delta_plus(2), 130);
  EXPECT_EQ(m->delta_min(3), 170);
  EXPECT_EQ(m->delta_plus(3), 230);
}

TEST(StandardEventModelTest, BurstWhenJitterExceedsPeriod) {
  // J = 250 >= 2.5 periods: up to 3 simultaneous events.
  const auto m = StandardEventModel::periodic_with_jitter(100, 250);
  EXPECT_EQ(m->delta_min(2), 0);
  EXPECT_EQ(m->delta_min(3), 0);
  EXPECT_EQ(m->delta_min(4), 50);   // 3*100 - 250
  EXPECT_EQ(m->eta_plus(1), 3);     // three can coincide
  EXPECT_EQ(m->max_simultaneous_events(), 3);
}

TEST(StandardEventModelTest, DminLimitsBurst) {
  const auto m = StandardEventModel::sporadic(100, 250, 10);
  EXPECT_EQ(m->delta_min(2), 10);
  EXPECT_EQ(m->delta_min(3), 20);
  EXPECT_EQ(m->delta_min(4), 50);  // period term takes over
  EXPECT_EQ(m->max_simultaneous_events(), 1);
}

TEST(StandardEventModelTest, RejectsInvalidParameters) {
  EXPECT_THROW(StandardEventModel(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(StandardEventModel(-5, 0, 0), std::invalid_argument);
  EXPECT_THROW(StandardEventModel(100, -1, 0), std::invalid_argument);
  EXPECT_THROW(StandardEventModel(100, 0, -1), std::invalid_argument);
  EXPECT_THROW(StandardEventModel(100, 0, 101), std::invalid_argument);
}

TEST(StandardEventModelTest, DescribeMentionsParameters) {
  const auto m = StandardEventModel::sporadic(100, 20, 5);
  EXPECT_NE(m->describe().find("P=100"), std::string::npos);
  EXPECT_NE(m->describe().find("J=20"), std::string::npos);
  EXPECT_NE(m->describe().find("dmin=5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property sweep: the closed-form eta functions must agree with the generic
// pseudo-inversion of the delta curves (paper eqs. 1-2).  A shim exposes the
// base-class implementation.

class InversionShim final : public EventModel {
 public:
  explicit InversionShim(ModelPtr inner) : inner_(std::move(inner)) {}
  [[nodiscard]] std::string describe() const override { return "shim"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override { return inner_->delta_min(n); }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return inner_->delta_plus(n); }
  // Note: eta_plus_raw / eta_minus_raw intentionally NOT overridden, so the
  // generic galloping inversion runs on the SEM's delta curves.

 private:
  ModelPtr inner_;
};

using SemParams = std::tuple<Time, Time, Time>;  // P, J, dmin

class SemInversionProperty : public ::testing::TestWithParam<SemParams> {};

TEST_P(SemInversionProperty, ClosedFormMatchesGenericInversion) {
  const auto [p, j, d] = GetParam();
  const auto sem = std::make_shared<StandardEventModel>(p, j, d);
  const InversionShim generic(sem);
  for (Time dt = 0; dt <= 6 * p + 2 * j; dt += 7) {
    ASSERT_EQ(sem->eta_plus(dt), generic.eta_plus(dt))
        << "eta+ mismatch at dt=" << dt << " for " << sem->describe();
    ASSERT_EQ(sem->eta_minus(dt), generic.eta_minus(dt))
        << "eta- mismatch at dt=" << dt << " for " << sem->describe();
  }
}

TEST_P(SemInversionProperty, DeltaCurvesAreMonotone) {
  const auto [p, j, d] = GetParam();
  const StandardEventModel sem(p, j, d);
  for (Count n = 2; n <= 64; ++n) {
    ASSERT_LE(sem.delta_min(n - 1), sem.delta_min(n));
    ASSERT_LE(sem.delta_plus(n - 1), sem.delta_plus(n));
    ASSERT_LE(sem.delta_min(n), sem.delta_plus(n));
  }
}

TEST_P(SemInversionProperty, DeltaMinIsSuperadditive) {
  // For SEMs: delta-(a + b - 1) >= delta-(a) + delta-(b) (concatenating two
  // minimal windows sharing one event).
  const auto [p, j, d] = GetParam();
  const StandardEventModel sem(p, j, d);
  for (Count a = 2; a <= 12; ++a)
    for (Count b = 2; b <= 12; ++b)
      ASSERT_GE(sem.delta_min(a + b - 1), sem.delta_min(a) + sem.delta_min(b))
          << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, SemInversionProperty,
    ::testing::Values(SemParams{100, 0, 100}, SemParams{100, 0, 0}, SemParams{100, 30, 0},
                      SemParams{100, 99, 0}, SemParams{100, 100, 0}, SemParams{100, 250, 0},
                      SemParams{100, 250, 10}, SemParams{100, 1000, 7}, SemParams{1, 0, 1},
                      SemParams{1, 5, 0}, SemParams{250, 0, 250}, SemParams{450, 20, 3},
                      SemParams{1000, 999, 400}, SemParams{33, 17, 5}));

}  // namespace
}  // namespace hem
