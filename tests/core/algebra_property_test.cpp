// Randomised property tests for the hand-optimised algebra: the O(log n)
// OR crossing search, the shaper's max-plus convolution and the output
// model's materialised recursion are each checked against their O(n)
// brute-force definitions on random parameterisations.

#include <gtest/gtest.h>

#include <random>

#include "core/combinators.hpp"
#include "core/output_model.hpp"
#include "core/shaper.hpp"
#include "core/standard_event_model.hpp"

namespace hem {
namespace {

ModelPtr random_sem(std::mt19937_64& rng) {
  std::uniform_int_distribution<Time> period(5, 400);
  const Time p = period(rng);
  std::uniform_int_distribution<Time> jitter(0, 3 * p);
  std::uniform_int_distribution<Time> dmin(0, p / 2);
  return StandardEventModel::sporadic(p, jitter(rng), dmin(rng));
}

class RandomAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomAlgebra, OrCrossingSearchMatchesBruteForce) {
  std::mt19937_64 rng(GetParam());
  const auto a = random_sem(rng);
  const auto b = random_sem(rng);
  const OrModel m(a, b);
  for (Count n = 2; n <= 40; ++n) {
    Time brute_min = kTimeInfinity;
    for (Count k = 0; k <= n; ++k)
      brute_min = std::min(brute_min, std::max(a->delta_min(k), b->delta_min(n - k)));
    ASSERT_EQ(m.delta_min(n), brute_min)
        << "seed=" << GetParam() << " n=" << n << " a=" << a->describe()
        << " b=" << b->describe();

    Time brute_plus = 0;
    for (Count k = 0; k <= n - 2; ++k)
      brute_plus =
          std::max(brute_plus, std::min(a->delta_plus(k + 2), b->delta_plus(n - k)));
    ASSERT_EQ(m.delta_plus(n), brute_plus)
        << "seed=" << GetParam() << " n=" << n << " a=" << a->describe()
        << " b=" << b->describe();
  }
}

TEST_P(RandomAlgebra, ShaperConvolutionMatchesBruteForce) {
  std::mt19937_64 rng(GetParam() + 1000);
  const auto in = random_sem(rng);
  // Stable shaper distance: strictly below the long-run period.
  const auto* sem = dynamic_cast<const StandardEventModel*>(in.get());
  std::uniform_int_distribution<Time> dist(1, std::max<Time>(1, sem->period() - 1));
  const Time d = dist(rng);
  const MinDistanceShaper shaped(in, d);
  for (Count n = 2; n <= 32; ++n) {
    Time brute = 0;
    for (Count k = 1; k <= n; ++k)
      brute = std::max(brute, in->delta_min(k) + d * (n - k));
    ASSERT_EQ(shaped.delta_min(n), brute) << "seed=" << GetParam() << " n=" << n;
  }
}

TEST_P(RandomAlgebra, OutputRecursionMatchesMaxPlusForm) {
  // delta'-(n) = max( (n-1) r-, max_{2<=m<=n} ( (delta-(m) - spread)^+ +
  // (n-m) r- ) ) - the closed max-plus form of the recursion.
  std::mt19937_64 rng(GetParam() + 2000);
  const auto in = random_sem(rng);
  std::uniform_int_distribution<Time> r(0, 40);
  Time r1 = r(rng), r2 = r(rng);
  if (r1 > r2) std::swap(r1, r2);
  const OutputModel out(in, r1, r2);
  const Time spread = r2 - r1;
  for (Count n = 2; n <= 32; ++n) {
    Time brute = r1 * (n - 1);
    for (Count m = 2; m <= n; ++m) {
      const Time shifted = std::max<Time>(0, in->delta_min(m) - spread);
      brute = std::max(brute, shifted + r1 * (n - m));
    }
    ASSERT_EQ(out.delta_min(n), brute) << "seed=" << GetParam() << " n=" << n;
  }
}

TEST_P(RandomAlgebra, EtaInversionRoundTrips) {
  std::mt19937_64 rng(GetParam() + 3000);
  const auto a = random_sem(rng);
  const auto b = random_sem(rng);
  const OrModel m(a, b);  // generic inversion path (no closed form)
  for (Time dt = 1; dt <= 1200; dt += 23) {
    const Count n = m.eta_plus(dt);
    ASSERT_GE(n, 1);
    if (n >= 2) {
      ASSERT_LT(m.delta_min(n), dt) << dt;
    }
    ASSERT_GE(m.delta_min(n + 1), dt) << dt;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAlgebra, ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace hem
