#include "core/time.hpp"

#include <gtest/gtest.h>

namespace hem {
namespace {

TEST(TimeTest, InfinityIsRecognised) {
  EXPECT_TRUE(is_infinite(kTimeInfinity));
  EXPECT_TRUE(is_infinite(kTimeInfinity + 5));
  EXPECT_FALSE(is_infinite(0));
  EXPECT_FALSE(is_infinite(kTimeInfinity - 1));
}

TEST(TimeTest, SatAddFiniteValues) {
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_add(0, 0), 0);
  EXPECT_EQ(sat_add(-5, 3), -2);
}

TEST(TimeTest, SatAddSaturates) {
  EXPECT_EQ(sat_add(kTimeInfinity, 1), kTimeInfinity);
  EXPECT_EQ(sat_add(1, kTimeInfinity), kTimeInfinity);
  EXPECT_EQ(sat_add(kTimeInfinity, kTimeInfinity), kTimeInfinity);
  EXPECT_EQ(sat_add(kTimeInfinity - 1, kTimeInfinity - 1), kTimeInfinity);
}

TEST(TimeTest, SatSubPropagatesInfinity) {
  EXPECT_EQ(sat_sub(kTimeInfinity, 100), kTimeInfinity);
  EXPECT_EQ(sat_sub(10, 4), 6);
  EXPECT_EQ(sat_sub(4, 10), -6);
}

TEST(TimeTest, SatMulBasics) {
  EXPECT_EQ(sat_mul(5, 3), 15);
  EXPECT_EQ(sat_mul(5, 0), 0);
  EXPECT_EQ(sat_mul(kTimeInfinity, 2), kTimeInfinity);
  EXPECT_EQ(sat_mul(kTimeInfinity, 0), 0);
}

TEST(TimeTest, SatMulSaturatesOnOverflow) {
  EXPECT_EQ(sat_mul(kTimeInfinity / 2, 3), kTimeInfinity);
  EXPECT_EQ(sat_mul(1'000'000'000'000, 1'000'000'000'000), kTimeInfinity);
}

TEST(TimeTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 5), 1);
  EXPECT_EQ(ceil_div(6, 5), 2);
  EXPECT_EQ(ceil_div(10, 5), 2);
}

TEST(TimeTest, FloorDivHandlesNegatives) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-6, 2), -3);
  EXPECT_EQ(floor_div(0, 2), 0);
}

}  // namespace
}  // namespace hem
