#include "core/trace_model.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/standard_event_model.hpp"

namespace hem {
namespace {

TEST(TraceModelTest, DeltaCurvesFromSimpleTrace) {
  const TraceModel m({0, 10, 30, 35, 100});
  EXPECT_EQ(m.delta_min(2), 5);    // 30 -> 35
  EXPECT_EQ(m.delta_plus(2), 65);  // 35 -> 100
  EXPECT_EQ(m.delta_min(3), 25);   // 10,30,35
  EXPECT_EQ(m.delta_plus(3), 70);  // 30,35,100
  EXPECT_EQ(m.delta_min(5), 100);
  EXPECT_EQ(m.delta_plus(5), 100);
}

TEST(TraceModelTest, BeyondTraceLengthIsUnbounded) {
  const TraceModel m({0, 10});
  EXPECT_TRUE(is_infinite(m.delta_min(3)));
  EXPECT_TRUE(is_infinite(m.delta_plus(3)));
}

TEST(TraceModelTest, SortsUnorderedInput) {
  const TraceModel m({35, 0, 100, 10, 30});
  EXPECT_EQ(m.delta_min(2), 5);
  EXPECT_EQ(m.length(), 5);
}

TEST(TraceModelTest, EmptyTrace) {
  const TraceModel m({});
  EXPECT_EQ(m.length(), 0);
  EXPECT_EQ(m.max_events_in_window(100), 0);
  EXPECT_TRUE(is_infinite(m.delta_min(2)));
}

TEST(TraceModelTest, WindowCountingMatchesEtaDerivation) {
  // The direct sliding-window count must equal eta+ derived from the trace's
  // delta- curve via eq. (1).
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<Time> gap(1, 50);
  std::vector<Time> trace{0};
  for (int i = 0; i < 200; ++i) trace.push_back(trace.back() + gap(rng));
  const TraceModel m(trace);
  for (Time dt = 1; dt <= 500; dt += 7)
    ASSERT_EQ(m.max_events_in_window(dt), m.eta_plus(dt)) << "dt=" << dt;
}

TEST(TraceModelTest, PeriodicTraceConformsToItsModel) {
  std::vector<Time> trace;
  for (int i = 0; i < 100; ++i) trace.push_back(100 * i);
  const TraceModel observed(trace);
  const auto model = StandardEventModel::periodic(100);
  for (Count n = 2; n <= 50; ++n) {
    EXPECT_GE(observed.delta_min(n), model->delta_min(n));
    EXPECT_LE(observed.delta_plus(n), model->delta_plus(n));
  }
}

TEST(TraceModelTest, SimultaneousEventsCount) {
  const TraceModel m({0, 0, 0, 50});
  EXPECT_EQ(m.delta_min(3), 0);
  EXPECT_EQ(m.max_events_in_window(1), 3);
  EXPECT_EQ(m.eta_plus(1), 3);
}

}  // namespace
}  // namespace hem
