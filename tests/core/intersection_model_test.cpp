#include "core/intersection_model.hpp"

#include <gtest/gtest.h>

#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem {
namespace {

TEST(IntersectionModelTest, TakesTighterBoundPointwise) {
  // SEM allows a burst of up to 3; a leaky bucket limits spacing after 2.
  const auto sem = StandardEventModel::periodic_with_jitter(100, 250);
  const auto bucket = std::make_shared<LeakyBucketModel>(2, 20);
  const IntersectionModel m(sem, bucket);
  // delta-: bucket is tighter for small n...
  EXPECT_EQ(m.delta_min(3), 20);   // sem says 0, bucket says 20
  // ...the SEM period term for large n.
  EXPECT_EQ(m.delta_min(10), std::max(sem->delta_min(10), bucket->delta_min(10)));
  // delta+: the bucket has none, the SEM bounds it.
  EXPECT_EQ(m.delta_plus(2), sem->delta_plus(2));
}

TEST(IntersectionModelTest, EtaTightensBothWays) {
  const auto sem = StandardEventModel::periodic_with_jitter(100, 250);
  const auto bucket = std::make_shared<LeakyBucketModel>(2, 20);
  const IntersectionModel m(sem, bucket);
  for (Time dt = 1; dt <= 1500; dt += 13) {
    EXPECT_LE(m.eta_plus(dt), sem->eta_plus(dt)) << dt;
    EXPECT_LE(m.eta_plus(dt), bucket->eta_plus(dt)) << dt;
    EXPECT_GE(m.eta_minus(dt), sem->eta_minus(dt)) << dt;
  }
}

TEST(IntersectionModelTest, IdempotentOnSameModel) {
  const auto sem = StandardEventModel::sporadic(100, 30, 5);
  const IntersectionModel m(sem, sem);
  EXPECT_TRUE(models_equal(m, *sem, 32));
}

TEST(IntersectionModelTest, ContradictionRejected) {
  // A says events at least 100 apart; B says at most 50 apart - impossible.
  const auto slow = StandardEventModel::periodic(100);  // delta-(2) = 100
  const auto fast = StandardEventModel::periodic(40);   // delta+(2) = 40
  EXPECT_THROW(IntersectionModel(slow, fast), std::invalid_argument);
}

TEST(IntersectionModelTest, OffsetsRefineSem) {
  // Datasheet SEM (3 events / 120, burst allowed) refined by an offset
  // table that spreads the events.
  const auto sem = StandardEventModel::sporadic(40, 80, 0);
  const auto offsets = std::make_shared<OffsetTransactionModel>(
      Time{120}, std::vector<Time>{0, 40, 80}, Time{10});
  const IntersectionModel m(sem, offsets);
  EXPECT_EQ(m.eta_plus(1), 1);           // offsets forbid the SEM's burst
  EXPECT_EQ(m.delta_min(2), 30);         // 40 - jitter 10
}

TEST(IntersectionModelTest, NullRejected) {
  const auto sem = StandardEventModel::periodic(100);
  EXPECT_THROW(IntersectionModel(nullptr, sem), std::invalid_argument);
}

}  // namespace
}  // namespace hem
