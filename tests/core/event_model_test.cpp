#include "core/event_model.hpp"

#include <gtest/gtest.h>

#include "core/delta_function_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem {
namespace {

// A model whose delta- never grows: an unbounded burst.  eta+ must saturate
// to the infinity sentinel instead of looping forever.
class DegenerateBurstModel final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "burst"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count) const override { return 0; }
  [[nodiscard]] Time delta_plus_raw(Count) const override { return 0; }
};

TEST(EventModelTest, DeltaBelowTwoIsZero) {
  const auto m = StandardEventModel::periodic(50);
  EXPECT_EQ(m->delta_min(-3), 0);
  EXPECT_EQ(m->delta_min(0), 0);
  EXPECT_EQ(m->delta_min(1), 0);
  EXPECT_EQ(m->delta_plus(1), 0);
}

TEST(EventModelTest, EtaPlusOfDegenerateBurstIsInfinite) {
  const DegenerateBurstModel m;
  EXPECT_TRUE(is_infinite_count(m.eta_plus(10)));
}

TEST(EventModelTest, EtaMinusWithUnboundedGapsIsZero) {
  // delta+(2) = infinity means the stream can fall silent forever.
  DeltaFunctionModel m({100}, {kTimeInfinity}, 1, 100);
  EXPECT_EQ(m.eta_minus(1'000'000), 0);
}

TEST(EventModelTest, EtaPlusIsMonotoneInDt) {
  const auto m = StandardEventModel::sporadic(100, 120, 15);
  Count prev = 0;
  for (Time dt = 0; dt <= 2000; dt += 11) {
    const Count v = m->eta_plus(dt);
    EXPECT_GE(v, prev) << "dt=" << dt;
    prev = v;
  }
}

TEST(EventModelTest, EtaMinusNeverExceedsEtaPlus) {
  const auto m = StandardEventModel::sporadic(100, 40, 20);
  for (Time dt = 0; dt <= 2000; dt += 13) EXPECT_LE(m->eta_minus(dt), m->eta_plus(dt));
}

TEST(EventModelTest, EtaDeltaGalois) {
  // Galois-style consistency: exactly eta+(dt) events fit in strictly less
  // than dt, so delta-(eta+(dt)) < dt <= delta-(eta+(dt) + 1).
  const auto m = StandardEventModel::sporadic(70, 150, 9);
  for (Time dt = 1; dt <= 1500; dt += 17) {
    const Count n = m->eta_plus(dt);
    ASSERT_GE(n, 1);
    if (n >= 2) {
      EXPECT_LT(m->delta_min(n), dt);
    }
    EXPECT_GE(m->delta_min(n + 1), dt);
  }
}

TEST(EventModelTest, ModelsEqualComparesCurves) {
  const auto a = StandardEventModel::periodic(100);
  const auto b = StandardEventModel::periodic(100);
  const auto c = StandardEventModel::periodic_with_jitter(100, 1);
  EXPECT_TRUE(models_equal(*a, *b, 32));
  EXPECT_FALSE(models_equal(*a, *c, 32));
}

TEST(EventModelTest, CachingReturnsConsistentValues) {
  const auto m = StandardEventModel::sporadic(100, 30, 5);
  const Time first = m->delta_min(17);
  const Time second = m->delta_min(17);  // served from cache
  EXPECT_EQ(first, second);
  // Interleave large and small queries to exercise cache growth.
  const Time big = m->delta_min(5000);
  EXPECT_EQ(m->delta_min(5000), big);
  EXPECT_EQ(m->delta_min(17), first);
}

}  // namespace
}  // namespace hem
