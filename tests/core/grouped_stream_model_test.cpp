#include "core/grouped_stream_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"

namespace hem {
namespace {

TEST(GroupedStreamModelTest, SingleEventGroupsEqualOuter) {
  const auto outer = StandardEventModel::periodic(100);
  const GroupedStreamModel m(outer, 1, 0);
  EXPECT_TRUE(models_equal(m, *outer, 32));
}

TEST(GroupedStreamModelTest, SimultaneousGroupCurves) {
  // B = 3 simultaneous events per periodic release.
  const auto outer = StandardEventModel::periodic(100);
  const GroupedStreamModel m(outer, 3, 0);
  EXPECT_EQ(m.delta_min(2), 0);
  EXPECT_EQ(m.delta_min(3), 0);
  EXPECT_EQ(m.delta_min(4), 100);   // needs 2 groups
  EXPECT_EQ(m.delta_min(7), 200);   // needs 3 groups
  EXPECT_EQ(m.delta_plus(2), 100);  // two consecutive can straddle a gap
  EXPECT_EQ(m.delta_plus(4), 100);
  EXPECT_EQ(m.delta_plus(5), 200);
}

TEST(GroupedStreamModelTest, SpacedGroupCurves) {
  const auto outer = StandardEventModel::periodic(100);
  const GroupedStreamModel m(outer, 3, 10);
  // Conservative bounds: the (B-1)*s spread is subtracted.
  EXPECT_EQ(m.delta_min(4), 80);  // 100 - 20
  EXPECT_EQ(m.delta_plus(4), 120);
}

TEST(GroupedStreamModelTest, EtaPlusCountsWholeGroups) {
  const auto outer = StandardEventModel::periodic(100);
  const GroupedStreamModel m(outer, 3, 0);
  EXPECT_EQ(m.eta_plus(1), 3);
  EXPECT_EQ(m.eta_plus(101), 6);
  EXPECT_EQ(m.eta_plus(1001), 33);
}

TEST(GroupedStreamModelTest, BoundsSimulatedGroupedTraces) {
  // Merge concrete grouped traces (random outer phases/jitter) and check
  // they conform to the model bounds.
  const Time period = 100, jitter = 40, spacing = 7;
  const Count group = 4;
  const auto outer = StandardEventModel::periodic_with_jitter(period, jitter);
  const GroupedStreamModel m(outer, group, spacing);

  std::mt19937_64 rng(3);
  std::uniform_int_distribution<Time> u(-jitter, 0);
  for (int run = 0; run < 20; ++run) {
    std::vector<Time> events;
    for (Count k = 1; k < 60; ++k) {
      const Time release = 100 * k + u(rng);
      for (Count j = 0; j < group; ++j) events.push_back(release + j * spacing);
    }
    std::sort(events.begin(), events.end());
    const TraceModel observed(events);
    for (Count n = 2; n <= 48; ++n) {
      ASSERT_GE(observed.delta_min(n), m.delta_min(n)) << "run=" << run << " n=" << n;
      ASSERT_LE(observed.delta_plus(n), m.delta_plus(n)) << "run=" << run << " n=" << n;
    }
  }
}

TEST(GroupedStreamModelTest, MonotoneCurves) {
  const auto outer = StandardEventModel::sporadic(100, 150, 10);
  const GroupedStreamModel m(outer, 4, 5);
  for (Count n = 3; n <= 64; ++n) {
    EXPECT_LE(m.delta_min(n - 1), m.delta_min(n));
    EXPECT_LE(m.delta_plus(n - 1), m.delta_plus(n));
    EXPECT_LE(m.delta_min(n), m.delta_plus(n));
  }
}

TEST(GroupedStreamModelTest, ValidationErrors) {
  const auto outer = StandardEventModel::periodic(100);
  EXPECT_THROW(GroupedStreamModel(nullptr, 2, 0), std::invalid_argument);
  EXPECT_THROW(GroupedStreamModel(outer, 0, 0), std::invalid_argument);
  EXPECT_THROW(GroupedStreamModel(outer, 2, -1), std::invalid_argument);
}

}  // namespace
}  // namespace hem
