#include "core/sem_fit.hpp"

#include <gtest/gtest.h>

#include "core/combinators.hpp"
#include "core/delta_function_model.hpp"
#include "core/errors.hpp"
#include "core/output_model.hpp"

namespace hem {
namespace {

TEST(SemFitTest, SemFitsItselfExactly) {
  // A bursty SEM where the dmin parameter is actually visible in the
  // curves: the fit recovers the parameters exactly.
  const auto original = StandardEventModel::sporadic(100, 250, 10);
  const auto fitted = fit_sem(*original, 100);
  EXPECT_EQ(fitted->period(), 100);
  EXPECT_EQ(fitted->jitter(), 250);
  EXPECT_EQ(fitted->d_min(), 10);
  EXPECT_TRUE(models_equal(*fitted, *original, 64));
}

TEST(SemFitTest, InertDminFitsEquivalentCurves) {
  // With J < P - dmin the dmin parameter never binds; the fit returns a
  // different triple with identical curves.
  const auto original = StandardEventModel::sporadic(100, 30, 10);
  const auto fitted = fit_sem(*original, 100);
  EXPECT_TRUE(models_equal(*fitted, *original, 64));
}

TEST(SemFitTest, PeriodEstimatedFromRate) {
  const auto original = StandardEventModel::periodic(250);
  const auto fitted = fit_sem(*original);
  // Estimation floors: ~1e6 / 4000 events.
  EXPECT_NEAR(static_cast<double>(fitted->period()), 250.0, 1.0);
}

TEST(SemFitTest, FitBoundsBurstModel) {
  // The fitted SEM must admit at least everything the burst admits.
  const auto burst = DeltaFunctionModel::periodic_burst(3, 10, 300);
  const auto fitted = fit_sem(*burst, 100);
  for (Count n = 2; n <= 64; ++n) {
    EXPECT_LE(fitted->delta_min(n), burst->delta_min(n)) << "n=" << n;
    EXPECT_GE(fitted->delta_plus(n), burst->delta_plus(n)) << "n=" << n;
  }
  for (Time dt = 1; dt <= 2000; dt += 17)
    EXPECT_GE(fitted->eta_plus(dt), burst->eta_plus(dt)) << "dt=" << dt;
}

TEST(SemFitTest, FitBoundsOrCombination) {
  const auto orm = std::make_shared<OrModel>(StandardEventModel::periodic(250),
                                             StandardEventModel::periodic(450));
  const auto fitted = fit_sem(*orm);
  for (Count n = 2; n <= 64; ++n)
    EXPECT_LE(fitted->delta_min(n), orm->delta_min(n)) << "n=" << n;
}

TEST(SemFitTest, FitIsLossyOnOrCombination) {
  // The whole point of curve propagation: the SEM fit must over-approximate
  // somewhere (the OR of 250/450 is not a SEM).
  const auto orm = std::make_shared<OrModel>(StandardEventModel::periodic(250),
                                             StandardEventModel::periodic(450));
  const auto fitted = fit_sem(*orm);
  bool lossy = false;
  for (Time dt = 1; dt <= 5000 && !lossy; dt += 13)
    lossy = fitted->eta_plus(dt) > orm->eta_plus(dt);
  EXPECT_TRUE(lossy);
}

TEST(SemFitTest, FitBoundsOutputModel) {
  const auto out = std::make_shared<OutputModel>(StandardEventModel::periodic(100), 5, 25);
  const auto fitted = fit_sem(*out, 100);
  EXPECT_EQ(fitted->period(), 100);
  EXPECT_GE(fitted->jitter(), 20);  // response spread becomes jitter
  for (Count n = 2; n <= 64; ++n)
    EXPECT_LE(fitted->delta_min(n), out->delta_min(n)) << "n=" << n;
}

TEST(SemFitTest, InfiniteDeltaPlusOnlyFitsEtaPlusDirection) {
  // A pending-style stream: delta+ = inf.  The fit bounds delta- but its
  // (finite) delta+ cannot bound infinity - documented behaviour.
  DeltaFunctionModel pending({750}, {kTimeInfinity}, 1, 1000);
  const auto fitted = fit_sem(pending, 1000);
  for (Count n = 2; n <= 32; ++n)
    EXPECT_LE(fitted->delta_min(n), pending.delta_min(n)) << "n=" << n;
}

TEST(SemFitTest, Errors) {
  EXPECT_THROW(fit_sem(*StandardEventModel::periodic(100), -1), std::invalid_argument);
  // Unbounded burst cannot be fitted.
  class Burst final : public EventModel {
   public:
    [[nodiscard]] std::string describe() const override { return "burst"; }

   protected:
    [[nodiscard]] Time delta_min_raw(Count) const override { return 0; }
    [[nodiscard]] Time delta_plus_raw(Count) const override { return 0; }
  };
  EXPECT_THROW(fit_sem(Burst{}), AnalysisError);
}

}  // namespace
}  // namespace hem
