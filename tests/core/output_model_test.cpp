#include "core/output_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "core/combinators.hpp"
#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"

namespace hem {
namespace {

TEST(OutputModelTest, ZeroSpreadKeepsDeltaPlus) {
  const auto in = StandardEventModel::periodic(100);
  const OutputModel out(in, 10, 10);
  for (Count n = 2; n <= 10; ++n) EXPECT_EQ(out.delta_plus(n), in->delta_plus(n));
}

TEST(OutputModelTest, SpreadActsAsJitter) {
  // A periodic stream through a task with response [5, 25] gains jitter 20.
  const auto in = StandardEventModel::periodic(100);
  const OutputModel out(in, 5, 25);
  const auto expect = StandardEventModel::periodic_with_jitter(100, 20);
  for (Count n = 2; n <= 20; ++n) {
    EXPECT_EQ(out.delta_plus(n), expect->delta_plus(n)) << "n=" << n;
    // delta- additionally respects the r- serialisation floor.
    EXPECT_EQ(out.delta_min(n),
              std::max(expect->delta_min(n), Time{5} * (n - 1)))
        << "n=" << n;
  }
}

TEST(OutputModelTest, MinimumResponseSeparatesOutputs) {
  // A bursty input (3 simultaneous events) leaves a task with r- = 10 at
  // least 10 apart.
  const auto in = StandardEventModel::periodic_with_jitter(100, 250);
  ASSERT_EQ(in->delta_min(3), 0);
  const OutputModel out(in, 10, 12);
  EXPECT_EQ(out.delta_min(2), 10);
  EXPECT_EQ(out.delta_min(3), 20);
}

TEST(OutputModelTest, RecursiveFloorIsCumulative) {
  const auto in = StandardEventModel::periodic_with_jitter(10, 1000);  // heavy burst
  const OutputModel out(in, 3, 4);
  for (Count n = 2; n <= 50; ++n) EXPECT_GE(out.delta_min(n), 3 * (n - 1));
}

TEST(OutputModelTest, RejectsInvalidResponseInterval) {
  const auto in = StandardEventModel::periodic(100);
  EXPECT_THROW(OutputModel(in, -1, 5), std::invalid_argument);
  EXPECT_THROW(OutputModel(in, 10, 5), std::invalid_argument);
  EXPECT_THROW(OutputModel(in, 0, kTimeInfinity), std::invalid_argument);
  EXPECT_THROW(OutputModel(nullptr, 0, 5), std::invalid_argument);
}

TEST(OutputModelTest, MonotoneCurves) {
  const auto in = StandardEventModel::sporadic(100, 350, 4);
  const OutputModel out(in, 7, 31);
  for (Count n = 3; n <= 64; ++n) {
    EXPECT_LE(out.delta_min(n - 1), out.delta_min(n));
    EXPECT_LE(out.delta_plus(n - 1), out.delta_plus(n));
    EXPECT_LE(out.delta_min(n), out.delta_plus(n));
  }
}

TEST(OutputModelTest, BoundsSimulatedCompletionTimes) {
  // Simulate a conforming input trace through a pipeline stage with response
  // times drawn from [r-, r+] such that completions preserve order; the
  // completion trace must conform to the output model.
  // dmin >= r- guarantees that the serialisation floor (c >= last + r-) and
  // the response bound (c <= a + r+) can never conflict.
  const Time r_minus = 8, r_plus = 20;
  const auto in = StandardEventModel::sporadic(50, 60, 10);
  const OutputModel out(in, r_minus, r_plus);

  std::mt19937_64 rng(99);
  std::uniform_int_distribution<Time> resp(r_minus, r_plus);
  // Build a conforming arrival trace: as early as possible (burst head).
  std::vector<Time> arrivals;
  Time prev = -1'000'000;
  for (Count k = 0; k < 300; ++k) {
    Time t = std::max<Time>(50 * k - 60, prev + 10);
    t = std::max<Time>(t, 0);
    arrivals.push_back(t);
    prev = t;
  }
  for (int run = 0; run < 20; ++run) {
    std::vector<Time> completions;
    Time last = -1'000'000;
    for (const Time a : arrivals) {
      // FIFO processing: completion in [a + r-, a + r+], and at least r-
      // after the previous completion.
      const Time c = std::max(a + resp(rng), last + r_minus);
      ASSERT_LE(c, a + r_plus);
      completions.push_back(c);
      last = c;
    }
    const TraceModel observed(completions);
    for (Count n = 2; n <= 40; ++n) {
      ASSERT_GE(observed.delta_min(n), out.delta_min(n)) << "n=" << n << " run=" << run;
      ASSERT_LE(observed.delta_plus(n), out.delta_plus(n)) << "n=" << n << " run=" << run;
    }
  }
}

TEST(OutputModelTest, ComposesWithOr) {
  // OR of two outputs stays well-formed and bounded by the slower parts.
  const auto a = std::make_shared<OutputModel>(StandardEventModel::periodic(100), 5, 20);
  const auto b = std::make_shared<OutputModel>(StandardEventModel::periodic(150), 2, 9);
  const OrModel m(a, b);
  for (Count n = 3; n <= 32; ++n) {
    EXPECT_LE(m.delta_min(n - 1), m.delta_min(n));
    EXPECT_LE(m.delta_min(n), m.delta_plus(n));
  }
}

}  // namespace
}  // namespace hem
