#include "core/shaper.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/errors.hpp"
#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"

namespace hem {
namespace {

TEST(ShaperTest, EnforcesMinimumDistance) {
  const auto in = StandardEventModel::periodic_with_jitter(100, 300);
  const MinDistanceShaper shaped(in, 40);
  for (Count n = 2; n <= 32; ++n) EXPECT_GE(shaped.delta_min(n), 40 * (n - 1));
}

TEST(ShaperTest, PassThroughWhenInputAlreadySmooth) {
  const auto in = StandardEventModel::periodic(100);
  const MinDistanceShaper shaped(in, 40);
  EXPECT_EQ(shaped.delay_bound(), 0);
  for (Count n = 2; n <= 16; ++n) {
    EXPECT_EQ(shaped.delta_min(n), in->delta_min(n));
    EXPECT_EQ(shaped.delta_plus(n), in->delta_plus(n));
  }
}

TEST(ShaperTest, DelayBoundMatchesHandComputation) {
  // Burst of 4 simultaneous events (J = 300, P = 100), shaper d = 20.
  // Worst lag: the 4th event waits 3*20 - delta-(4) = 60 - 0 = 60.
  const auto in = StandardEventModel::periodic_with_jitter(100, 300);
  ASSERT_EQ(in->delta_min(4), 0);
  ASSERT_EQ(in->delta_min(5), 100);
  const MinDistanceShaper shaped(in, 20);
  EXPECT_EQ(shaped.delay_bound(), 60);
  EXPECT_EQ(shaped.delta_plus(2), in->delta_plus(2) + 60);
}

TEST(ShaperTest, ThrowsWhenOverloaded) {
  // Long-run rate 1/100 but shaper spacing 150: backlog grows forever.
  const auto in = StandardEventModel::periodic(100);
  EXPECT_THROW(MinDistanceShaper(in, 150, 1 << 10), AnalysisError);
}

TEST(ShaperTest, RejectsBadArguments) {
  const auto in = StandardEventModel::periodic(100);
  EXPECT_THROW(MinDistanceShaper(nullptr, 10), std::invalid_argument);
  EXPECT_THROW(MinDistanceShaper(in, 0), std::invalid_argument);
  EXPECT_THROW(MinDistanceShaper(in, 10, 1), std::invalid_argument);
}

TEST(ShaperTest, BoundsGreedyShaperSimulation) {
  // Simulate the greedy shaper on a conforming bursty trace and check the
  // output trace against the shaped model.
  const Time d = 20;
  const auto in = StandardEventModel::periodic_with_jitter(100, 300);
  const MinDistanceShaper shaped(in, d);

  // Worst-case early arrivals.
  std::vector<Time> arrivals;
  Time prev = -1'000'000;
  for (Count k = 0; k < 200; ++k) {
    const Time t = std::max<Time>(100 * k - 300, std::max<Time>(prev, 0));
    arrivals.push_back(t);
    prev = t;
  }
  std::vector<Time> out;
  Time last = -1'000'000;
  for (const Time a : arrivals) {
    const Time s = std::max(a, last + d);
    EXPECT_LE(s - a, shaped.delay_bound());
    out.push_back(s);
    last = s;
  }
  const TraceModel observed(out);
  for (Count n = 2; n <= 40; ++n) {
    EXPECT_GE(observed.delta_min(n), shaped.delta_min(n)) << "n=" << n;
    EXPECT_LE(observed.delta_plus(n), shaped.delta_plus(n)) << "n=" << n;
  }
}

TEST(ShaperTest, MonotoneCurves) {
  const auto in = StandardEventModel::sporadic(100, 500, 2);
  const MinDistanceShaper shaped(in, 30);
  for (Count n = 3; n <= 64; ++n) {
    EXPECT_LE(shaped.delta_min(n - 1), shaped.delta_min(n));
    EXPECT_LE(shaped.delta_plus(n - 1), shaped.delta_plus(n));
    EXPECT_LE(shaped.delta_min(n), shaped.delta_plus(n));
  }
}

}  // namespace
}  // namespace hem
