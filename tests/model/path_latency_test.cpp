#include "model/path_latency.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::cpa {
namespace {

AnalysisReport chain_report() {
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(3, 5)});
  const auto b = sys.add_task({"b", cpu2, 1, sched::ExecutionTime(2, 7)});
  sys.activate_external(a, StandardEventModel::periodic(100));
  sys.activate_by(b, {a});
  return CpaEngine(sys).run();
}

TEST(PathLatencyTest, SumsResponseTimesInOrder) {
  const auto report = chain_report();
  const std::array<std::string, 2> path{"a", "b"};
  EXPECT_EQ(path_wcrt(report, path), 5 + 7);
  EXPECT_EQ(path_bcrt(report, path), 3 + 2);
}

TEST(PathLatencyTest, SamplingDelaysAdd) {
  const auto report = chain_report();
  const std::array<std::string, 2> path{"a", "b"};
  const std::array<Time, 1> delays{250};
  EXPECT_EQ(path_wcrt_with_sampling(report, path, delays), 12 + 250);
}

TEST(PathLatencyTest, ErrorsOnBadInput) {
  const auto report = chain_report();
  const std::array<std::string, 1> unknown{"zz"};
  EXPECT_THROW(path_wcrt(report, unknown), std::invalid_argument);
  EXPECT_THROW(path_wcrt(report, std::span<const std::string>{}), std::invalid_argument);
  const std::array<std::string, 1> path{"a"};
  const std::array<Time, 1> negative{-1};
  EXPECT_THROW(path_wcrt_with_sampling(report, path, negative), std::invalid_argument);
}

TEST(PathLatencyTest, PaperSystemEndToEnd) {
  // End-to-end S3 -> T3: one COM sampling delay (delta+_f1(2)) + frame
  // response + T3 response, compared flat vs HEM.
  const auto results = scenarios::analyze_paper_system();
  const std::array<std::string, 2> path{"F1", "T3"};
  const Time sampling = results.hem.task("F1").activation->delta_plus(2);
  const Time hem_latency = path_wcrt_with_sampling(results.hem, path,
                                                   std::array<Time, 1>{sampling});
  const Time flat_latency = path_wcrt_with_sampling(results.flat, path,
                                                    std::array<Time, 1>{sampling});
  EXPECT_LT(hem_latency, flat_latency);
  // Sanity: sampling delay (max frame gap 250) dominates.
  EXPECT_GT(hem_latency, 250);
}

}  // namespace
}  // namespace hem::cpa
