#include "model/textual_config.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "model/cpa_engine.hpp"

namespace hem::cpa {
namespace {

ParsedSystem parse(const std::string& text) {
  std::istringstream in(text);
  return parse_system_config(in);
}

TEST(TextualConfigTest, MinimalSystemParsesAndAnalyses) {
  const auto parsed = parse(R"(
# a CPU with two tasks
resource CPU1 spp
source s1 periodic period=5
source s2 periodic period=20
task hp resource=CPU1 priority=1 cet=2
task lp resource=CPU1 priority=2 cet=4
activate hp from=s1
activate lp from=s2
)");
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_EQ(report.task("hp").wcrt, 2);
  EXPECT_EQ(report.task("lp").wcrt, 8);
}

TEST(TextualConfigTest, CetIntervalsAndChains) {
  const auto parsed = parse(R"(
resource CPU1 spp
resource CPU2 spp
source s periodic period=100
task a resource=CPU1 priority=1 cet=3:5
task b resource=CPU2 priority=1 cet=4
activate a from=s
activate b from=a
)");
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_EQ(report.task("a").bcrt, 3);
  EXPECT_EQ(report.task("a").wcrt, 5);
  EXPECT_EQ(report.task("b").activation->delta_min(2), 98);
}

TEST(TextualConfigTest, PaperSystemInConfigForm) {
  const auto parsed = parse(R"(
resource CAN can
resource CPU1 spp
source s1 periodic period=250
source s2 periodic period=450
source s3 periodic period=1000
task F1 resource=CAN priority=1 cet=4
task F2 resource=CAN priority=2 cet=2
task T1 resource=CPU1 priority=1 cet=24
task T2 resource=CPU1 priority=2 cet=32
task T3 resource=CPU1 priority=3 cet=40
source s4 periodic period=400
packed F1 inputs=s1:trig,s2:trig,s3:pend
packed F2 inputs=s4:trig
unpack T1 frame=F1 index=0
unpack T2 frame=F1 index=1
unpack T3 frame=F1 index=2
deadline T1 100
deadline T3 250
)");
  EXPECT_EQ(parsed.deadlines.size(), 2u);
  const auto feasible = check_feasible(parsed.system, parsed.deadlines);
  EXPECT_TRUE(feasible.feasible) << feasible.reason;
  EXPECT_EQ(feasible.report.task("T3").wcrt, 96);
}

TEST(TextualConfigTest, OrActivationAndSemSources) {
  const auto parsed = parse(R"(
resource CPU spp
source fast sem period=100 jitter=30 dmin=5
source slow sem period=300
task a resource=CPU priority=1 cet=1
task b resource=CPU priority=2 cet=1
task c resource=CPU priority=3 cet=2
activate a from=fast
activate b from=slow
activate c or=a,b
)");
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_GT(report.task("c").activation->eta_plus(1000), 10);
}

TEST(TextualConfigTest, BurstSourceAndTdma) {
  const auto parsed = parse(R"(
resource BUS tdma cycle=20
source bursty burst size=3 inner=10 period=200
task t resource=BUS priority=1 cet=4 slot=5
activate t from=bursty
)");
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_GT(report.task("t").wcrt, 4);  // TDMA gap visible
}

TEST(TextualConfigTest, LeakyAndOffsetSources) {
  const auto parsed = parse(R"(
resource CPU spp
source bucket leaky burst=3 spacing=50
source table offsets period=100 at=0,30,60 jitter=5
task a resource=CPU priority=1 cet=2
task b resource=CPU priority=2 cet=1
activate a from=bucket
activate b from=table
)");
  const auto report = CpaEngine(parsed.system).run();
  // Leaky bucket: three back-to-back activations of a.
  EXPECT_EQ(report.task("a").activation->eta_plus(1), 3);
  // Offsets: b fires 3 times per 100 ticks.
  EXPECT_EQ(report.task("b").activation->eta_plus(101), 4);
}

TEST(TextualConfigTest, MixedFrameTimer) {
  const auto parsed = parse(R"(
resource CAN can
source s periodic period=500
task F resource=CAN priority=1 cet=4
packed F inputs=s:pend timer=100
)");
  const auto report = CpaEngine(parsed.system).run();
  // Outer stream = the timer.
  EXPECT_EQ(report.task("F").activation->delta_min(2), 100);
}

TEST(TextualConfigTest, SyntaxErrorsCarryLineNumbers) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse(text);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("frobnicate x\n", "unknown keyword");
  expect_error("resource R warp\n", "unknown policy");
  expect_error("resource R spp\ntask t resource=R priority=1 cet=abc\n", "bad cet");
  expect_error("source s periodic period=0\n", "invalid source");
  expect_error("resource R spp\ntask t resource=NOPE priority=1 cet=1\n",
               "unknown resource");
  expect_error("resource R spp\ntask t resource=R priority=1 cet=1\nactivate t from=ghost\n",
               "unknown source");
  expect_error("resource R spp\ntask t resource=R priority=1 cet=1\nactivate t\n",
               "activate needs");
  expect_error("deadline ghost 5\n", "unknown task");
  // Line numbers appear in the message.
  expect_error("resource R spp\nsource s periodic\n", "line 2");
}

TEST(TextualConfigTest, ErrorsCarryColumnsAndSuggestions) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse(text);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  // Misspelled keyword: column of the keyword plus a suggestion.
  expect_error("taks t resource=R\n", "line 1, col 1");
  expect_error("taks t resource=R\n", "did you mean 'task'?");
  // Misspelled policy: column of the policy token.
  expect_error("resource R spt\n", "line 1, col 12");
  expect_error("resource R spt\n", "did you mean 'spp'?");
  // Unknown key=value argument with the closest valid key.
  expect_error("resource R spp\ntask t resource=R prioirty=1 cet=1\n",
               "unknown argument 'prioirty'");
  expect_error("resource R spp\ntask t resource=R prioirty=1 cet=1\n",
               "did you mean 'priority'?");
  expect_error("source s periodic periood=5\n", "did you mean 'period'?");
  // Column points at the offending argument, not the line start.
  expect_error("source s periodic periood=5\n", "col 19");
  // Malformed value: the column of its key=value token.
  expect_error("source s periodic period=abc\n", "line 1, col 19");
  // No suggestion when nothing is close.
  try {
    parse("resource R spp\ntask t resource=R zzzzzz=1 cet=1\n");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos) << e.what();
  }
}

TEST(TextualConfigTest, RejectsTrailingGarbageAndOverflow) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse(text);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  const std::string head = "resource R spp\nsource s periodic period=5\n";
  // Partially-numeric cet values used to be silently truncated (cet=5x -> 5).
  expect_error(head + "task t resource=R priority=1 cet=5x\n",
               "bad cet '5x': trailing characters");
  expect_error(head + "task t resource=R priority=1 cet=3:7junk\n",
               "bad cet '3:7junk': trailing characters");
  // The error points at the cet=... token.
  expect_error(head + "task t resource=R priority=1 cet=5x\n", "line 3, col 30");
  // Overflow used to escape as a raw std::out_of_range with no position.
  expect_error(head + "task t resource=R priority=1 cet=99999999999999999999\n",
               "bad cet '99999999999999999999': number out of range");
  expect_error("resource R spp\nsource s periodic period=99999999999999999999\n",
               "line 2, col 19: number out of range");
}

TEST(TextualConfigTest, RejectsNegativeTimeValues) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse(text);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("resource R spp\nsource s periodic period=-5\n",
               "line 2, col 19: negative value not allowed here: '-5'");
  expect_error("resource R spp\nsource s sem period=100 jitter=-3\n",
               "line 2, col 25: negative value not allowed here: '-3'");
  expect_error("resource R spp\nsource s sem period=100 dmin=-1\n",
               "negative value not allowed here: '-1'");
  expect_error(
      "resource R spp\nsource s periodic period=5\ntask t resource=R priority=1 cet=-4\n",
      "bad cet '-4': negative execution time");
  // Priorities stay signed: some policies order by arbitrary integers.
  const auto parsed = parse(
      "resource R spp\nsource s periodic period=50\n"
      "task t resource=R priority=-1 cet=2\nactivate t from=s\n");
  EXPECT_EQ(parsed.system.tasks().size(), 1u);
}

TEST(TextualConfigTest, DuplicateArgumentIsPositionedError) {
  try {
    parse("resource R spp\nsource s periodic period=5 period=7\n");
    FAIL() << "expected duplicate-argument error";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate argument 'period'"), std::string::npos) << msg;
    // Column of the SECOND occurrence, not the first.
    EXPECT_NE(msg.find("line 2, col 28"), std::string::npos) << msg;
  }
}

TEST(TextualConfigTest, OptionTraceAndMetrics) {
  const std::string base = R"(
resource CPU1 spp
source s1 periodic period=5
task hp resource=CPU1 priority=1 cet=2
activate hp from=s1
)";
  EXPECT_EQ(parse(base).trace_out, "");
  EXPECT_FALSE(parse(base).metrics);
  EXPECT_EQ(parse(base + "option trace=run.json\n").trace_out, "run.json");
  EXPECT_TRUE(parse(base + "option metrics=on\n").metrics);
  EXPECT_TRUE(parse(base + "option metrics=1\n").metrics);
  EXPECT_FALSE(parse(base + "option metrics=off\n").metrics);

  const auto expect_error = [&](const std::string& line, const std::string& needle) {
    try {
      parse(base + line);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("option metrics=maybe\n", "metrics must be on|off");
  expect_error("option trace=\n", "trace needs a file path");
}

TEST(TextualConfigTest, OptionJobs) {
  const std::string base = R"(
resource CPU1 spp
source s1 periodic period=5
task hp resource=CPU1 priority=1 cet=2
activate hp from=s1
)";
  EXPECT_EQ(parse(base).jobs, 0);  // unset by default
  EXPECT_EQ(parse(base + "option jobs=4\n").jobs, 4);

  const auto expect_error = [&](const std::string& line, const std::string& needle) {
    try {
      parse(base + line);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("option jobs=0\n", "jobs must be >= 1");
  expect_error("option jobs=-2\n", "jobs must be >= 1");
  expect_error("option jobs=many\n", "not a number");
  expect_error("option jbos=4\n", "did you mean 'jobs'?");
}

TEST(TextualConfigTest, OptionStrictAndSimFaults) {
  const std::string base = R"(
resource CPU1 spp
source s1 periodic period=5
task hp resource=CPU1 priority=1 cet=2
activate hp from=s1
)";
  const auto defaults = parse(base);
  EXPECT_FALSE(defaults.strict);
  EXPECT_EQ(defaults.sim_drop, 0.0);
  EXPECT_EQ(defaults.sim_jitter, 0);
  EXPECT_EQ(defaults.sim_burst, 1);

  const auto tuned = parse(base +
                           "option strict=on\n"
                           "option sim_drop=0.25\n"
                           "option sim_jitter=7\n"
                           "option sim_burst=3\n");
  EXPECT_TRUE(tuned.strict);
  EXPECT_DOUBLE_EQ(tuned.sim_drop, 0.25);
  EXPECT_EQ(tuned.sim_jitter, 7);
  EXPECT_EQ(tuned.sim_burst, 3);
  EXPECT_FALSE(parse(base + "option strict=off\n").strict);

  const auto expect_error = [&](const std::string& line, const std::string& needle) {
    try {
      parse(base + line);
      FAIL() << "expected parse error containing '" << needle << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("option strict=maybe\n", "strict must be on|off");
  expect_error("option sim_drop=1.5\n", "probability in [0, 1]");
  expect_error("option sim_drop=-0.1\n", "probability in [0, 1]");
  expect_error("option sim_burst=0\n", "sim_burst must be >= 1");
}

TEST(TextualConfigTest, ParserWarningsArePositioned) {
  std::istringstream in(R"(
resource CPU1 spp
source s1 sem period=100 jitter=250
task hp resource=CPU1 priority=1 cet=2
activate hp from=s1
)");
  std::vector<verify::Diagnostic> diags;
  const auto parsed = parse_system_config(in, &diags);
  ASSERT_EQ(parsed.warnings.size(), 1u);
  const auto& w = parsed.warnings.front();
  EXPECT_EQ(w.code, "HL003");
  EXPECT_EQ(w.severity, verify::LintSeverity::kWarning);
  EXPECT_EQ(w.line, 3);
  EXPECT_EQ(w.col, 26);  // the jitter= token
  EXPECT_EQ(diags.size(), 1u);  // warnings mirrored into the out-param
}

TEST(TextualConfigTest, FailedParseStillReportsDiagnostics) {
  std::istringstream in(R"(
resource CPU1 spp
source s1 sem period=100 dmin=400
)");
  std::vector<verify::Diagnostic> diags;
  EXPECT_THROW(parse_system_config(in, &diags), std::invalid_argument);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.front().code, "HL004");
  EXPECT_TRUE(diags.front().is_error());
  EXPECT_EQ(diags.front().line, 3);
}

TEST(TextualConfigTest, IndexRecordsDeclarationPositions) {
  std::istringstream in(R"(
resource CPU1 spp
source s1 periodic period=5
task hp resource=CPU1 priority=1 cet=2
activate hp from=s1
deadline hp 50
)");
  const auto parsed = parse_system_config(in);
  ASSERT_TRUE(parsed.index.resources.count("CPU1"));
  EXPECT_EQ(parsed.index.resources.at("CPU1").line, 2);
  ASSERT_TRUE(parsed.index.sources.count("s1"));
  EXPECT_EQ(parsed.index.sources.at("s1").line, 3);
  ASSERT_TRUE(parsed.index.tasks.count("hp"));
  EXPECT_EQ(parsed.index.tasks.at("hp").line, 4);
  ASSERT_TRUE(parsed.index.deadlines.count("hp"));
  EXPECT_EQ(parsed.index.deadlines.at("hp").line, 6);
  ASSERT_TRUE(parsed.index.source_refs.count("s1"));
  EXPECT_EQ(parsed.index.source_refs.at("s1"), 1);
}

TEST(TextualConfigTest, IncompleteSystemRejected) {
  EXPECT_THROW(parse("resource R spp\ntask t resource=R priority=1 cet=1\n"),
               std::invalid_argument);
}

TEST(TextualConfigTest, MissingFileRejected) {
  EXPECT_THROW(parse_system_config_file("/nonexistent/config.hemcpa"),
               std::invalid_argument);
}

TEST(TextualConfigTest, Utf8BomIsAccepted) {
  const auto parsed = parse(
      "\xEF\xBB\xBF"
      "resource CPU1 spp\n"
      "source s1 periodic period=10\n"
      "task A resource=CPU1 priority=1 cet=2\n"
      "activate A from=s1\n");
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_EQ(report.task("A").wcrt, 2);
}

TEST(TextualConfigTest, BomDiagnosticsUseVisibleColumns) {
  // Column 1 is the first character AFTER the BOM, matching what editors show.
  try {
    parse("\xEF\xBB\xBFwibble CPU1 spp\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1, col 1"), std::string::npos) << e.what();
  }
}

TEST(TextualConfigTest, CrlfLineEndingsAreAccepted) {
  const auto parsed = parse(
      "resource CPU1 spp\r\n"
      "source s1 periodic period=10\r\n"
      "task A resource=CPU1 priority=1 cet=2\r\n"
      "activate A from=s1\r\n");
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_EQ(report.task("A").wcrt, 2);
}

TEST(TextualConfigTest, CrlfDiagnosticsKeepColumns) {
  // The stripped '\r' must not shift (or suppress) error positions.
  try {
    parse("resource CPU1 spp\r\ntask A resource=CPU1 priority=1 cet=oops\r\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_EQ(std::string(e.what()).find('\r'), std::string::npos) << "CR leaked into message";
  }
}

TEST(TextualConfigTest, OverloadCheckOptionParsed) {
  const auto parsed = parse(
      "resource CPU1 spp\n"
      "source s1 periodic period=10\n"
      "task A resource=CPU1 priority=1 cet=2\n"
      "activate A from=s1\n"
      "option overload_check=off\n");
  EXPECT_FALSE(parsed.check_overload);
  const auto on = parse(
      "resource CPU1 spp\n"
      "source s1 periodic period=10\n"
      "task A resource=CPU1 priority=1 cet=2\n"
      "activate A from=s1\n"
      "option overload_check=on\n");
  EXPECT_TRUE(on.check_overload);
}

TEST(TextualConfigTest, OverloadCheckDefaultsOnAndRejectsBadValue) {
  EXPECT_TRUE(parse("resource CPU1 spp\n"
                    "source s1 periodic period=10\n"
                    "task A resource=CPU1 priority=1 cet=2\n"
                    "activate A from=s1\n")
                  .check_overload);
  try {
    parse("option overload_check=maybe\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("overload_check must be on|off"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace hem::cpa
