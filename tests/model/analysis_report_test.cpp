#include "model/analysis_report.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/errors.hpp"
#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"

namespace hem::cpa {
namespace {

TEST(AnalysisReportTest, TaskLookupThrowsForUnknown) {
  AnalysisReport report;
  TaskResult r;
  r.name = "known";
  report.tasks.push_back(r);
  EXPECT_EQ(&report.task("known"), &report.tasks[0]);
  EXPECT_THROW((void)report.task("unknown"), std::invalid_argument);
}

TEST(AnalysisReportTest, LongRunRateOfPeriodicStream) {
  const auto m = StandardEventModel::periodic(100);
  EXPECT_NEAR(long_run_rate(*m), 0.01, 0.0001);
}

TEST(AnalysisReportTest, LongRunRateOfBurstyStreamIsInfinite) {
  class Burst final : public EventModel {
   public:
    [[nodiscard]] std::string describe() const override { return "burst"; }

   protected:
    [[nodiscard]] Time delta_min_raw(Count) const override { return 0; }
    [[nodiscard]] Time delta_plus_raw(Count) const override { return 0; }
  };
  EXPECT_TRUE(std::isinf(long_run_rate(Burst{})));
}

TEST(AnalysisReportTest, NonConvergenceNamesUnresolvedTasks) {
  // A two-task mutual cycle with no external stimulus path cannot
  // bootstrap; the error message must name the stuck tasks.
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"alpha", cpu1, 1, sched::ExecutionTime(1)});
  const auto b = sys.add_task({"beta", cpu2, 1, sched::ExecutionTime(1)});
  sys.activate_by(a, {b});
  sys.activate_by(b, {a});
  EngineOptions opts;
  opts.max_iterations = 8;
  opts.check_overload = false;
  opts.strict = true;
  try {
    (void)CpaEngine(sys, opts).run();
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("alpha"), std::string::npos) << what;
    EXPECT_NE(what.find("beta"), std::string::npos) << what;
  }
  // Graceful default: same system completes, naming the stuck tasks in
  // unresolved-activation diagnostics instead of throwing.
  opts.strict = false;
  const auto report = CpaEngine(sys, opts).run();
  EXPECT_FALSE(report.converged);
  EXPECT_TRUE(report.degraded());
  EXPECT_TRUE(is_infinite(report.task("alpha").wcrt));
  EXPECT_TRUE(is_infinite(report.task("beta").wcrt));
  const std::string diag = report.diagnostics.format();
  EXPECT_NE(diag.find("alpha"), std::string::npos) << diag;
  EXPECT_NE(diag.find("beta"), std::string::npos) << diag;
}

}  // namespace
}  // namespace hem::cpa
