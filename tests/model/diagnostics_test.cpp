#include "model/diagnostics.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/sensitivity.hpp"
#include "sched/busy_window.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

/// Degenerate stream with unbounded simultaneity (delta == 0 everywhere).
class UnboundedBurst final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "unbounded-burst"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count) const override { return 0; }
  [[nodiscard]] Time delta_plus_raw(Count) const override { return 0; }
};

// ---- DiagnosticSink -------------------------------------------------------

TEST(DiagnosticSinkTest, DeduplicatesByCodeAndEntity) {
  DiagnosticSink sink;
  sink.report({Severity::kError, DiagCode::kResourceOverload, "cpu", "first", 1});
  sink.report({Severity::kError, DiagCode::kResourceOverload, "cpu", "second", 2});
  sink.report({Severity::kWarning, DiagCode::kDegradedUpstream, "t", "taint", 2});
  ASSERT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(sink.entries()[0].detail, "second");  // replaced in place
  EXPECT_EQ(sink.entries()[0].iteration, 2);
  EXPECT_EQ(sink.count(Severity::kError), 1u);
  EXPECT_EQ(sink.count(Severity::kWarning), 1u);
  EXPECT_TRUE(sink.has_errors());
}

TEST(DiagnosticSinkTest, FormatNamesSeverityCodeAndEntity) {
  DiagnosticSink sink;
  EXPECT_TRUE(sink.empty());
  sink.report({Severity::kWarning, DiagCode::kInnerUpdateUnbounded, "F1", "pending", 3});
  const std::string text = sink.format();
  EXPECT_NE(text.find("[warning]"), std::string::npos) << text;
  EXPECT_NE(text.find("inner-update-unbounded"), std::string::npos) << text;
  EXPECT_NE(text.find("'F1'"), std::string::npos) << text;
  EXPECT_NE(text.find("iteration 3"), std::string::npos) << text;
}

// ---- SporadicEnvelopeModel ------------------------------------------------

TEST(SporadicEnvelopeTest, LowerBoundSpacingAndUnboundedGaps) {
  const SporadicEnvelopeModel m(100);
  EXPECT_EQ(m.delta_min(2), 100);
  EXPECT_EQ(m.delta_min(5), 400);
  EXPECT_TRUE(is_infinite(m.delta_plus(2)));  // eq. 8: pending shape
  EXPECT_EQ(m.eta_plus(1001), 11);            // at most one event per 100 ticks
  EXPECT_EQ(m.eta_minus(1'000'000), 0);       // no arrival guarantee at all
  EXPECT_THROW(SporadicEnvelopeModel{-1}, std::invalid_argument);
  EXPECT_THROW(SporadicEnvelopeModel{kTimeInfinity}, std::invalid_argument);
}

// ---- utilization_wcrt_envelope -------------------------------------------

TEST(UtilizationEnvelopeTest, FiniteWhenUtilizationBelowOne) {
  const std::vector<EnvelopeTask> tasks{{periodic(10), 5}};
  const Time bound = utilization_wcrt_envelope(tasks);
  EXPECT_FALSE(is_infinite(bound));
  EXPECT_GE(bound, 5);  // must dominate the exact WCRT (here: the CET)
}

TEST(UtilizationEnvelopeTest, InfiniteAtOrAboveFullUtilization) {
  const std::vector<EnvelopeTask> tasks{{periodic(10), 10}};
  EXPECT_TRUE(is_infinite(utilization_wcrt_envelope(tasks)));
}

TEST(UtilizationEnvelopeTest, InfiniteForUnboundedActivation) {
  const std::vector<EnvelopeTask> tasks{{std::make_shared<UnboundedBurst>(), 1}};
  EXPECT_TRUE(is_infinite(utilization_wcrt_envelope(tasks)));
}

TEST(UtilizationEnvelopeTest, DominatesExactSppAnalysis) {
  // hp periodic(5) cet 2, lp periodic(20) cet 4: exact WCRT(lp) = 8.  The
  // linear envelope must lie above it.
  const std::vector<EnvelopeTask> tasks{{periodic(5), 2}, {periodic(20), 4}};
  const Time bound = utilization_wcrt_envelope(tasks);
  EXPECT_FALSE(is_infinite(bound));
  EXPECT_GE(bound, 8);
}

// ---- least_fixpoint error codes ------------------------------------------

TEST(FixpointBudgetTest, ExpiredDeadlineThrowsTimeBudget) {
  sched::FixpointLimits limits;
  limits.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  try {
    (void)sched::least_fixpoint([](Time w) { return w / 2 + 10; }, 0, limits, "test");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeBudget);
  }
}

TEST(FixpointBudgetTest, WindowOverflowThrowsWindowLimit) {
  sched::FixpointLimits limits;
  limits.max_window = 100;
  try {
    (void)sched::least_fixpoint([](Time w) { return w + 7; }, 0, limits, "test");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kWindowLimit);
  }
}

TEST(FixpointBudgetTest, IterationExhaustionThrowsIterationLimit) {
  sched::FixpointLimits limits;
  limits.max_iterations = 10;
  try {
    (void)sched::least_fixpoint([](Time w) { return w + 1; }, 0, limits, "test");
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIterationLimit);
  }
}

// ---- graceful engine degradation -----------------------------------------

TEST(GracefulEngineTest, OverloadTaintsDownstreamConsumers) {
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(120)});
  const auto b = sys.add_task({"b", cpu2, 1, sched::ExecutionTime(1)});
  sys.activate_external(a, periodic(100));
  sys.activate_by(b, {a});

  const auto report = CpaEngine(sys).run();
  EXPECT_EQ(report.task("a").status, TaskStatus::kOverloaded);
  EXPECT_TRUE(is_infinite(report.task("a").wcrt));
  // b itself is schedulable on its sporadic fallback activation, but its
  // bounds derive from a degraded producer.
  EXPECT_EQ(report.task("b").status, TaskStatus::kDegradedUpstream);
  EXPECT_FALSE(is_infinite(report.task("b").wcrt));
  EXPECT_TRUE(report.degraded());
  const std::string diag = report.diagnostics.format();
  EXPECT_NE(diag.find("resource-overload"), std::string::npos) << diag;
  EXPECT_NE(diag.find("degraded-upstream"), std::string::npos) << diag;
  // The report banner announces the degradation.
  EXPECT_NE(report.format().find("DEGRADED"), std::string::npos);
}

TEST(GracefulEngineTest, BusyWindowWindowLimitMapsToOverloaded) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto hp = sys.add_task({"hp", cpu, 1, sched::ExecutionTime(2)});
  const auto lp = sys.add_task({"lp", cpu, 2, sched::ExecutionTime(4)});
  sys.activate_external(hp, periodic(5));
  sys.activate_external(lp, periodic(20));
  EngineOptions opts;
  opts.fixpoint_limits.max_window = 1;  // every busy window overflows instantly
  opts.check_overload = false;          // exercise the busy-window path, not the load check
  const auto report = CpaEngine(sys, opts).run();
  EXPECT_EQ(report.task("lp").status, TaskStatus::kOverloaded);
  // The utilisation envelope still yields a finite conservative bound that
  // dominates the exact WCRT of 8.
  EXPECT_FALSE(is_infinite(report.task("lp").wcrt));
  EXPECT_GE(report.task("lp").wcrt, 8);
}

TEST(GracefulEngineTest, BusyWindowIterationLimitMapsToBudgetExhausted) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto hp = sys.add_task({"hp", cpu, 1, sched::ExecutionTime(2)});
  const auto lp = sys.add_task({"lp", cpu, 2, sched::ExecutionTime(4)});
  sys.activate_external(hp, periodic(5));
  sys.activate_external(lp, periodic(20));
  EngineOptions opts;
  opts.fixpoint_limits.max_iterations = 1;
  const auto report = CpaEngine(sys, opts).run();
  EXPECT_EQ(report.task("lp").status, TaskStatus::kBudgetExhausted);
  EXPECT_GE(report.task("lp").wcrt, 8);
}

TEST(GracefulEngineTest, ExpiredWallClockDeadlineYieldsBudgetExhausted) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(2)});
  sys.activate_external(t, periodic(10));
  EngineOptions opts;
  opts.fixpoint_limits.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const auto report = CpaEngine(sys, opts).run();
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.task("t").status, TaskStatus::kBudgetExhausted);
  EXPECT_TRUE(is_infinite(report.task("t").wcrt));
  const std::string diag = report.diagnostics.format();
  EXPECT_NE(diag.find("wall-clock-budget"), std::string::npos) << diag;
}

TEST(GracefulEngineTest, CyclicBootstrapYieldsUnresolvedDiagnostics) {
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"alpha", cpu1, 1, sched::ExecutionTime(1)});
  const auto b = sys.add_task({"beta", cpu2, 1, sched::ExecutionTime(1)});
  sys.activate_by(a, {b});
  sys.activate_by(b, {a});
  EngineOptions opts;
  opts.max_iterations = 8;
  opts.check_overload = false;
  const auto report = CpaEngine(sys, opts).run();
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.task("alpha").status, TaskStatus::kDiverged);
  EXPECT_EQ(report.task("beta").status, TaskStatus::kDiverged);
  EXPECT_TRUE(is_infinite(report.task("alpha").wcrt));
  const std::string diag = report.diagnostics.format();
  EXPECT_NE(diag.find("unresolved-activation"), std::string::npos) << diag;
}

TEST(GracefulEngineTest, GracefulAndStrictAgreeOnHealthySystems) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto hp = sys.add_task({"hp", cpu, 1, sched::ExecutionTime(2)});
  const auto lp = sys.add_task({"lp", cpu, 2, sched::ExecutionTime(4)});
  sys.activate_external(hp, periodic(5));
  sys.activate_external(lp, periodic(20));
  const auto graceful = CpaEngine(sys).run();
  EngineOptions opts;
  opts.strict = true;
  const auto strict = CpaEngine(sys, opts).run();
  for (const char* name : {"hp", "lp"}) {
    EXPECT_EQ(graceful.task(name).wcrt, strict.task(name).wcrt) << name;
    EXPECT_EQ(graceful.task(name).status, TaskStatus::kConverged) << name;
  }
  EXPECT_FALSE(graceful.degraded());
  EXPECT_TRUE(graceful.diagnostics.empty());
}

TEST(GracefulEngineTest, DegradedReportIsInfeasibleForSensitivity) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(120)});
  sys.activate_external(t, periodic(100));
  const auto result = check_feasible(sys, {});
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.reason.find("degraded"), std::string::npos) << result.reason;
}

}  // namespace
}  // namespace hem::cpa
