#include "model/cpa_engine.hpp"

#include <gtest/gtest.h>

#include "core/errors.hpp"
#include "core/standard_event_model.hpp"
#include "exec/cancel.hpp"
#include "sched/spp.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(CpaEngineTest, SingleResourceMatchesLocalAnalysis) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto hp = sys.add_task({"hp", cpu, 1, sched::ExecutionTime(2)});
  const auto lp = sys.add_task({"lp", cpu, 2, sched::ExecutionTime(4)});
  sys.activate_external(hp, periodic(5));
  sys.activate_external(lp, periodic(20));
  const auto report = CpaEngine(sys).run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.task("hp").wcrt, 2);
  EXPECT_EQ(report.task("lp").wcrt, 8);
}

TEST(CpaEngineTest, FeedForwardChainPropagatesJitter) {
  // src -> a (cpu1) -> b (cpu2).  b's activation inherits a's response
  // jitter; its own WCRT equals its CET (alone on cpu2), but activation
  // delta-(2) shrinks.
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto hp = sys.add_task({"hp", cpu1, 1, sched::ExecutionTime(3)});
  const auto a = sys.add_task({"a", cpu1, 2, sched::ExecutionTime(2, 5)});
  const auto b = sys.add_task({"b", cpu2, 1, sched::ExecutionTime(4)});
  sys.activate_external(hp, periodic(10));
  sys.activate_external(a, periodic(50));
  sys.activate_by(b, {a});
  const auto report = CpaEngine(sys).run();
  EXPECT_TRUE(report.converged);
  // a: C in [2,5], one hp interference: wcrt = 5 + 3 = 8, bcrt = 2.
  EXPECT_EQ(report.task("a").wcrt, 8);
  EXPECT_EQ(report.task("a").bcrt, 2);
  EXPECT_EQ(report.task("b").wcrt, 4);
  // b's activation: periodic 50 with jitter 6 (response spread of a).
  EXPECT_EQ(report.task("b").activation->delta_min(2), 44);
  EXPECT_EQ(report.task("b").activation->delta_plus(2), 56);
}

TEST(CpaEngineTest, OrJunctionCombinesProducers) {
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(1)});
  const auto b = sys.add_task({"b", cpu1, 2, sched::ExecutionTime(1)});
  const auto c = sys.add_task({"c", cpu2, 1, sched::ExecutionTime(2)});
  sys.activate_external(a, periodic(100));
  sys.activate_external(b, periodic(150));
  sys.activate_by(c, {a, b});
  const auto report = CpaEngine(sys).run();
  // c activated at combined rate: in 3000 ticks ~ 30+20 events.
  const auto& act = report.task("c").activation;
  EXPECT_GE(act->eta_plus(3001), 50);
  EXPECT_EQ(report.task("c").wcrt, 4);  // two simultaneous activations possible
}

TEST(CpaEngineTest, PackedFrameAndUnpackedReceivers) {
  System sys;
  const auto bus = sys.add_resource({"bus", Policy::kSpnpCan});
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto f = sys.add_task({"f", bus, 1, sched::ExecutionTime(4)});
  const auto rx = sys.add_task({"rx", cpu, 1, sched::ExecutionTime(10)});
  sys.activate_packed(f, {{periodic(100), SignalCoupling::kTriggering},
                          {periodic(400), SignalCoupling::kPending}});
  sys.activate_unpacked(rx, f, 1);
  const auto report = CpaEngine(sys).run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.task("f").wcrt, 4);
  // rx sees the pending inner stream: roughly one activation per 400 ticks.
  EXPECT_LE(report.task("rx").activation->eta_plus(4000), 12);
  EXPECT_NE(report.task("f").hem_output, nullptr);
  EXPECT_EQ(report.task("rx").hem_output, nullptr);
}

TEST(CpaEngineTest, OverloadDetected) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(120)});
  sys.activate_external(t, periodic(100));
  // Graceful default: the run completes with fallback bounds and a
  // resource-overload diagnostic instead of throwing.
  const auto report = CpaEngine(sys).run();
  EXPECT_EQ(report.task("t").status, TaskStatus::kOverloaded);
  EXPECT_TRUE(is_infinite(report.task("t").wcrt));
  EXPECT_TRUE(report.degraded());
  EXPECT_TRUE(report.diagnostics.has_errors());
  // Strict mode restores the classic throw.
  EngineOptions strict;
  strict.strict = true;
  EXPECT_THROW((void)CpaEngine(sys, strict).run(), AnalysisError);
}

TEST(CpaEngineTest, ReportsUtilization) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(25)});
  sys.activate_external(t, periodic(100));
  const auto report = CpaEngine(sys).run();
  EXPECT_NEAR(report.task("t").utilization, 0.25, 0.01);
}

TEST(CpaEngineTest, MixedPoliciesInOneSystem) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto rr = sys.add_resource({"rr", Policy::kRoundRobin});
  const auto tdma = sys.add_resource({"tdma", Policy::kTdma, 20});
  const auto a = sys.add_task({"a", cpu, 1, sched::ExecutionTime(2)});
  TaskSpec b_spec{"b", rr, 0, sched::ExecutionTime(3)};
  b_spec.slot = 3;
  const auto b = sys.add_task(b_spec);
  TaskSpec c_spec{"c", tdma, 0, sched::ExecutionTime(4)};
  c_spec.slot = 5;
  const auto c = sys.add_task(c_spec);
  sys.activate_external(a, periodic(50));
  sys.activate_by(b, {a});
  sys.activate_by(c, {b});
  const auto report = CpaEngine(sys).run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.task("b").wcrt, 3);       // alone on its RR resource
  EXPECT_EQ(report.task("c").wcrt, 15 + 4);  // TDMA worst alignment: gap 15 + C 4
}

TEST(CpaEngineTest, SemPropagationIsLossyButSound) {
  // src -> a (bursty interference) -> b: with propagate_fitted_sem the
  // downstream WCRT may only grow (the fit over-approximates).
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto hp1 = sys.add_task({"hp1", cpu1, 1, sched::ExecutionTime(3)});
  const auto a1 = sys.add_task({"a1", cpu1, 2, sched::ExecutionTime(1)});
  const auto a2 = sys.add_task({"a2", cpu1, 3, sched::ExecutionTime(1)});
  const auto b = sys.add_task({"b", cpu2, 2, sched::ExecutionTime(9)});
  sys.activate_external(hp1, periodic(10));
  sys.activate_external(a1, periodic(40));
  sys.activate_external(a2, periodic(70));
  sys.activate_by(b, {a1, a2});  // OR of two outputs: not SEM-shaped

  EngineOptions exact;
  EngineOptions fitted;
  fitted.propagate_fitted_sem = true;
  const Time wcrt_exact = CpaEngine(sys, exact).run().task("b").wcrt;
  const Time wcrt_fitted = CpaEngine(sys, fitted).run().task("b").wcrt;
  EXPECT_GE(wcrt_fitted, wcrt_exact);
}

TEST(CpaEngineTest, BacklogReported) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(10)});
  sys.activate_external(t, StandardEventModel::periodic_with_jitter(100, 250));
  const auto report = CpaEngine(sys).run();
  EXPECT_EQ(report.task("t").backlog, 3);
  EXPECT_NE(report.format().find("queue"), std::string::npos);
}

TEST(CpaEngineTest, CancelRethrowsEvenInGracefulMode) {
  // Cancellation is an operator decision, not an analysis hazard: graceful
  // degradation must never swallow it into fallback bounds.
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_external(t, periodic(100));
  exec::CancelToken token;
  token.cancel(exec::CancelReason::kUser);
  EngineOptions graceful;  // strict = false: would degrade any other error
  graceful.cancel = &token;
  try {
    (void)CpaEngine(sys, graceful).run();
    FAIL() << "expected AnalysisError(kCancelled)";
  } catch (const AnalysisError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos) << e.what();
  }
}

TEST(CpaEngineTest, UncancelledTokenDoesNotPerturbResults) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_external(t, periodic(100));
  exec::CancelToken token;
  EngineOptions opts;
  opts.cancel = &token;
  const auto report = CpaEngine(sys, opts).run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.task("t").wcrt, 5);
}

TEST(CpaEngineTest, FormatProducesTable) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_external(t, periodic(100));
  const auto report = CpaEngine(sys).run();
  const std::string text = report.format();
  EXPECT_NE(text.find("task"), std::string::npos);
  EXPECT_NE(text.find("t"), std::string::npos);
  EXPECT_NE(text.find("converged"), std::string::npos);
}

}  // namespace
}  // namespace hem::cpa
