// Differential tests of the curve-algebra compilation wired into the CPA
// engine (EngineOptions::compile_curves, src/rtc/compile.hpp):
//
//  * reports are bit-identical with compilation on and off, serial and
//    parallel, across the example systems and a fuzz sweep of >= 20
//    synthesised seeds — compiled queries must agree with the lazy DAG
//    inside the horizon and fall back to it beyond;
//  * a converged run lowers every task's activation and output node and
//    counts them deterministically in EngineStats::models_compiled;
//  * the compilation axioms AX12/AX13 hold on every model the example
//    systems produce;
//  * stats regressions: hit rates are 0.0 (never NaN) with zero lookups,
//    and the delta-memo / OutputModel-recursion race counters are separate
//    fields (a serial run shows zero in both).

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "obs/obs.hpp"
#include "scenarios/body_network.hpp"
#include "scenarios/paper_system.hpp"
#include "scenarios/synth.hpp"
#include "verify/model_checker.hpp"

namespace hem::cpa {
namespace {

/// Render everything observable about a report into one string (same
/// fingerprint as the parallel-engine tests): task table, CSV dump,
/// diagnostic records.
std::string fingerprint(const AnalysisReport& report) {
  std::ostringstream os;
  os << report.format() << "\n--csv--\n";
  io::write_report_csv(os, report);
  os << "--diag--\n";
  for (const auto& d : report.diagnostics.entries())
    os << static_cast<int>(d.severity) << "|" << static_cast<int>(d.code) << "|" << d.entity
       << "|" << d.detail << "|" << d.iteration << "\n";
  return os.str();
}

AnalysisReport run_with(const System& sys, int jobs, bool compile) {
  EngineOptions opts;
  opts.jobs = jobs;
  opts.compile_curves = compile;
  return CpaEngine(sys, opts).run();
}

TEST(EngineCompiledTest, PaperSystemIdenticalWithAndWithoutCompilation) {
  const auto sys = scenarios::build_paper_system({}, true);
  const auto lazy = run_with(sys, 1, false);
  ASSERT_TRUE(lazy.converged);
  EXPECT_EQ(lazy.stats.models_compiled, 0);
  for (const int jobs : {1, 8}) {
    const auto compiled = run_with(sys, jobs, true);
    EXPECT_EQ(fingerprint(lazy), fingerprint(compiled)) << "jobs=" << jobs;
    EXPECT_EQ(lazy.iterations, compiled.iterations) << "jobs=" << jobs;
  }
}

TEST(EngineCompiledTest, BodyNetworkIdenticalWithAndWithoutCompilation) {
  const auto sys = scenarios::build_body_network({});
  const auto lazy = run_with(sys, 1, false);
  const auto compiled = run_with(sys, 8, true);
  EXPECT_EQ(fingerprint(lazy), fingerprint(compiled));
}

// The ISSUE's acceptance sweep: >= 20 synthesised seeds, compiled-vs-lazy
// report fingerprints identical at jobs = 1 and jobs = 8.
TEST(EngineCompiledTest, SynthSeedsIdenticalAcrossCompilationAndJobCounts) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    scenarios::SynthParams params;
    params.resources = 6;
    params.tasks = 24;
    params.seed = seed;
    const auto sys = scenarios::build_synth_system(params);
    const auto lazy = run_with(sys, 1, false);
    const std::string expect = fingerprint(lazy);
    for (const int jobs : {1, 8}) {
      const auto compiled = run_with(sys, jobs, true);
      EXPECT_EQ(expect, fingerprint(compiled)) << "seed=" << seed << " jobs=" << jobs;
    }
  }
}

TEST(EngineCompiledTest, ConvergedRunCompilesReportModels) {
  const auto sys = scenarios::build_paper_system({}, true);
  const auto report = run_with(sys, 1, true);
  ASSERT_TRUE(report.converged);
  EXPECT_GT(report.stats.models_compiled, 0);
  for (const auto& t : report.tasks) {
    if (t.activation) EXPECT_NE(t.activation->compiled(), nullptr) << t.name;
    if (t.output) EXPECT_NE(t.output->compiled(), nullptr) << t.name;
  }
  // The counter is deterministic (pointer-stamp driven, never dependent on
  // thread interleavings) and zero with the flag off on a fresh system.
  const auto parallel = run_with(scenarios::build_paper_system({}, true), 8, true);
  EXPECT_EQ(report.stats.models_compiled, parallel.stats.models_compiled);
  const auto off = run_with(scenarios::build_paper_system({}, true), 1, false);
  EXPECT_EQ(off.stats.models_compiled, 0);
  for (const auto& t : off.tasks)
    if (t.activation) EXPECT_EQ(t.activation->compiled(), nullptr) << t.name;
}

TEST(EngineCompiledTest, CompiledAxiomsHoldOnExampleSystems) {
  const System systems[] = {scenarios::build_paper_system({}, true),
                            scenarios::build_body_network({}),
                            scenarios::build_synth_system([] {
                              scenarios::SynthParams p;
                              p.resources = 5;
                              p.tasks = 20;
                              p.seed = 7;
                              return p;
                            }())};
  for (const auto& sys : systems) {
    const auto report = run_with(sys, 1, true);
    verify::ModelChecker checker;
    for (const auto& t : report.tasks) {
      if (t.activation) checker.check_compiled(*t.activation, t.name + ".activation");
      if (t.output) checker.check_compiled(*t.output, t.name + ".output");
    }
    EXPECT_TRUE(checker.ok()) << checker.format();
  }
}

TEST(EngineCompiledTest, HitRatesAreZeroNotNaNWithoutLookups) {
  const EngineStats empty{};
  EXPECT_EQ(empty.curve_cache_hit_rate(), 0.0);
  EXPECT_FALSE(std::isnan(empty.curve_cache_hit_rate()));
  EXPECT_EQ(empty.analysis_cache_hit_rate(), 0.0);
  EXPECT_EQ(empty.node_reuse_rate(), 0.0);
  // A run with obs counting disabled records no cache probes at all — the
  // report must still present a well-defined (zero) hit rate.
  obs::set_counting(false);
  const auto report = run_with(scenarios::build_paper_system({}, true), 1, true);
  EXPECT_EQ(report.stats.cache_hits + report.stats.cache_misses, 0);
  EXPECT_FALSE(std::isnan(report.stats.curve_cache_hit_rate()));
  EXPECT_EQ(report.stats.curve_cache_hit_rate(), 0.0);
}

TEST(EngineCompiledTest, RaceCountersAreSeparateAndZeroWhenSerial) {
  // With a single worker no publication can race in either subsystem; the
  // split fields must both read zero instead of cross-charging the
  // OutputModel recursion arena to the delta-memo caches.
  obs::set_counting(true);
  const auto report = run_with(scenarios::build_paper_system({}, true), 1, true);
  obs::set_counting(false);
  EXPECT_EQ(report.stats.cache_publish_races, 0);
  EXPECT_EQ(report.stats.rec_publish_races, 0);
  EXPECT_GT(report.stats.cache_hits + report.stats.cache_misses, 0);
}

}  // namespace
}  // namespace hem::cpa
