// Tests of the incremental / parallel CPA engine: bit-identical results for
// every job count, dirty-set scheduling doing strictly less work than the
// classic full re-evaluation, and event-model node reuse across iterations.

#include <gtest/gtest.h>

#include <sstream>

#include "core/errors.hpp"
#include "core/standard_event_model.hpp"
#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "scenarios/paper_system.hpp"
#include "scenarios/synth.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

/// Render everything observable about a report into one string: the task
/// table (with diagnostics), the CSV dump, and the diagnostic record list.
std::string fingerprint(const AnalysisReport& report) {
  std::ostringstream os;
  os << report.format() << "\n--csv--\n";
  io::write_report_csv(os, report);
  os << "--diag--\n";
  for (const auto& d : report.diagnostics.entries())
    os << static_cast<int>(d.severity) << "|" << static_cast<int>(d.code) << "|" << d.entity
       << "|" << d.detail << "|" << d.iteration << "\n";
  return os.str();
}

AnalysisReport run_with(const System& sys, int jobs, bool incremental = true) {
  EngineOptions opts;
  opts.jobs = jobs;
  opts.incremental = incremental;
  return CpaEngine(sys, opts).run();
}

/// The paper system with one source sped up until CPU1 overloads, so the
/// graceful-degradation paths (fallback bounds, taint propagation,
/// diagnostics) are exercised under parallel execution too.
System overloaded_paper_system() {
  scenarios::PaperSystemParams p;
  p.s1_period = 20;  // T1 cet 24 at period 20 -> CPU1 load > 1
  return scenarios::build_paper_system(p, true);
}

TEST(EngineParallelTest, PaperSystemIdenticalAcrossJobCounts) {
  const auto sys = scenarios::build_paper_system({}, true);
  const auto serial = run_with(sys, 1);
  ASSERT_TRUE(serial.converged);
  for (const int jobs : {2, 8}) {
    const auto parallel = run_with(sys, jobs);
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel)) << "jobs=" << jobs;
    EXPECT_EQ(serial.iterations, parallel.iterations);
  }
}

TEST(EngineParallelTest, OverloadedSystemIdenticalAcrossJobCounts) {
  const auto sys = overloaded_paper_system();
  const auto serial = run_with(sys, 1);
  EXPECT_TRUE(serial.degraded());
  const auto parallel = run_with(sys, 8);
  EXPECT_EQ(fingerprint(serial), fingerprint(parallel));
}

TEST(EngineParallelTest, HardwareConcurrencyJobsRuns) {
  // jobs = 0 resolves to one thread per hardware core.
  const auto sys = scenarios::build_paper_system({}, true);
  const auto report = run_with(sys, 0);
  EXPECT_TRUE(report.converged);
  EXPECT_GE(report.stats.jobs, 1);
  EXPECT_EQ(fingerprint(run_with(sys, 1)), fingerprint(report));
}

TEST(EngineParallelTest, IncrementalMatchesFullRecomputation) {
  for (const auto* variant : {"paper", "overloaded"}) {
    const auto sys = std::string(variant) == "paper" ? scenarios::build_paper_system({}, true)
                                                     : overloaded_paper_system();
    const auto incremental = run_with(sys, 1, true);
    const auto full = run_with(sys, 1, false);
    EXPECT_EQ(fingerprint(incremental), fingerprint(full)) << variant;
    EXPECT_EQ(incremental.iterations, full.iterations) << variant;
  }
}

TEST(EngineParallelTest, IncrementalSkipsCleanResources) {
  const auto sys = scenarios::build_paper_system({}, true);
  const auto report = run_with(sys, 1);
  ASSERT_TRUE(report.converged);
  const long slots =
      static_cast<long>(report.iterations) * static_cast<long>(sys.resources().size());
  // Dirty-set scheduling must do strictly less work than iterations x
  // resources (CPU2 has no upstream change after its inputs settle).
  EXPECT_LT(report.stats.local_analyses_run, slots);
  EXPECT_GT(report.stats.local_analyses_skipped, 0);
  EXPECT_GT(report.stats.analysis_cache_hit_rate(), 0.0);
  // The full engine re-analyses every resolved resource every iteration.
  const auto full = run_with(sys, 1, false);
  EXPECT_GT(full.stats.local_analyses_run, report.stats.local_analyses_run);
  EXPECT_EQ(full.stats.local_analyses_skipped, 0);
}

TEST(EngineParallelTest, NodesReusedAcrossIterations) {
  // src -> a -> b -> c on separate resources: once a's response settles,
  // b's activation is rebuilt from the same producer node and must be
  // reused by pointer, not reconstructed.
  System sys;
  const auto r1 = sys.add_resource({"r1", Policy::kSppPreemptive});
  const auto r2 = sys.add_resource({"r2", Policy::kSppPreemptive});
  const auto r3 = sys.add_resource({"r3", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", r1, 1, sched::ExecutionTime(2, 5)});
  const auto b = sys.add_task({"b", r2, 1, sched::ExecutionTime(3)});
  const auto c = sys.add_task({"c", r3, 1, sched::ExecutionTime(4)});
  sys.activate_external(a, periodic(50));
  sys.activate_by(b, {a});
  sys.activate_by(c, {b});
  const auto report = run_with(sys, 1);
  ASSERT_TRUE(report.converged);
  EXPECT_GT(report.stats.models_reused, 0);
  EXPECT_GT(report.stats.local_analyses_skipped, 0);
  // Single-producer OR-combination is the producer's output node itself;
  // reuse keeps the identity visible in the report.
  EXPECT_EQ(report.task("b").activation.get(), report.task("a").output.get());
  EXPECT_EQ(report.task("c").activation.get(), report.task("b").output.get());
}

TEST(EngineParallelTest, StatsRecordJobCount) {
  const auto sys = scenarios::build_paper_system({}, true);
  EXPECT_EQ(run_with(sys, 1).stats.jobs, 1);
  EXPECT_EQ(run_with(sys, 8).stats.jobs, 8);
}

TEST(EngineParallelTest, StrictModeThrowsIdenticallyAcrossJobCounts) {
  const auto sys = overloaded_paper_system();
  std::string serial_what;
  std::string parallel_what;
  for (const int jobs : {1, 8}) {
    EngineOptions opts;
    opts.strict = true;
    opts.jobs = jobs;
    try {
      (void)CpaEngine(sys, opts).run();
      FAIL() << "expected AnalysisError, jobs=" << jobs;
    } catch (const AnalysisError& e) {
      (jobs == 1 ? serial_what : parallel_what) = e.what();
    }
  }
  EXPECT_EQ(serial_what, parallel_what);
}

// A single resource with many tasks used to be a worst case for the
// per-RESOURCE worker pool (exactly one work item, zero parallelism and
// pure thread-spawn overhead).  With per-task units it must both
// parallelise and stay bit-identical.
TEST(EngineParallelTest, SingleResourceManyTasksIdenticalAcrossJobCounts) {
  System sys;
  const ResourceId cpu = sys.add_resource({"CPU", Policy::kSppPreemptive});
  for (int i = 0; i < 48; ++i) {
    TaskSpec spec;
    spec.name = "T" + std::to_string(i);
    spec.resource = cpu;
    spec.priority = i;
    spec.cet = sched::ExecutionTime(1 + i % 2, 3 + i % 5);
    const TaskId t = sys.add_task(std::move(spec));
    sys.activate_external(t, StandardEventModel::periodic_with_jitter(400 + 13 * i, 7 * (i % 4)));
  }
  const auto serial = run_with(sys, 1);
  ASSERT_TRUE(serial.converged);
  for (const int jobs : {2, 8}) {
    const auto parallel = run_with(sys, jobs);
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel)) << "jobs=" << jobs;
  }
}

// Wide synthesised system (gateway chains, CAN buses, UUniFast load):
// reports must be bit-identical for every job count, including job counts
// far above the hardware's core count.
TEST(EngineParallelTest, WideSynthSystemIdenticalAcrossJobCounts) {
  scenarios::SynthParams params;
  params.resources = 40;
  params.tasks = 240;
  params.seed = 7;
  const auto sys = scenarios::build_synth_system(params);
  const auto serial = run_with(sys, 1);
  ASSERT_TRUE(serial.converged);
  for (const int jobs : {3, 16}) {
    const auto parallel = run_with(sys, jobs);
    EXPECT_EQ(fingerprint(serial), fingerprint(parallel)) << "jobs=" << jobs;
    EXPECT_EQ(serial.iterations, parallel.iterations);
  }
}

}  // namespace
}  // namespace hem::cpa
