#include <gtest/gtest.h>

#include <sstream>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/textual_config.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(AndActivationTest, CombinesEqualPeriodProducers) {
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(2, 6)});
  const auto b = sys.add_task({"b", cpu1, 2, sched::ExecutionTime(1, 3)});
  const auto join = sys.add_task({"join", cpu2, 1, sched::ExecutionTime(5)});
  sys.activate_external(a, periodic(100));
  sys.activate_external(b, periodic(100));
  sys.activate_and(join, {a, b}, 100);

  const auto report = CpaEngine(sys).run();
  EXPECT_TRUE(report.converged);
  // join's activation: period 100, jitter = max of the producers' output
  // jitters (a: spread 4 after interference-free high prio; b suffers a's
  // interference).
  const auto& act = report.task("join").activation;
  EXPECT_EQ(act->eta_minus(1'000'000) + act->eta_plus(1'000'000), 20'000);  // ~1/100 rate
  EXPECT_EQ(report.task("join").wcrt, 5);
}

TEST(AndActivationTest, JitterIsMaxOfProducers) {
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto cpu3 = sys.add_resource({"cpu3", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(1, 21)});
  const auto b = sys.add_task({"b", cpu2, 1, sched::ExecutionTime(1, 4)});
  const auto join = sys.add_task({"join", cpu3, 1, sched::ExecutionTime(5)});
  sys.activate_external(a, periodic(200));
  sys.activate_external(b, periodic(200));
  sys.activate_and(join, {a, b}, 200);
  const auto report = CpaEngine(sys).run();
  // a's output jitter (response spread 20) dominates b's (3):
  // delta-(2) of the AND stream = 200 - 20.
  EXPECT_EQ(report.task("join").activation->delta_min(2), 180);
  EXPECT_EQ(report.task("join").activation->delta_plus(2), 220);
}

TEST(AndActivationTest, ValidationErrors) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu, 1, sched::ExecutionTime(1)});
  const auto b = sys.add_task({"b", cpu, 2, sched::ExecutionTime(1)});
  const auto c = sys.add_task({"c", cpu, 3, sched::ExecutionTime(1)});
  EXPECT_THROW(sys.activate_and(c, {a}, 100), std::invalid_argument);      // < 2 producers
  EXPECT_THROW(sys.activate_and(c, {a, b}, 0), std::invalid_argument);     // no period
  EXPECT_THROW(sys.activate_and(c, {a, c}, 100), std::invalid_argument);   // self
}

TEST(AndActivationTest, ParsesFromConfig) {
  std::istringstream in(R"(
resource CPU1 spp
resource CPU2 spp
source s1 periodic period=100
source s2 periodic period=100
task a resource=CPU1 priority=1 cet=2
task b resource=CPU1 priority=2 cet=3
task j resource=CPU2 priority=1 cet=4
activate a from=s1
activate b from=s2
activate j and=a,b period=100
)");
  const auto parsed = parse_system_config(in);
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_EQ(report.task("j").wcrt, 4);
  EXPECT_NEAR(static_cast<double>(report.task("j").activation->eta_plus(10'000)), 100.0, 2.0);
}

TEST(AndActivationTest, ConfigErrorsCarryContext) {
  std::istringstream in(R"(
resource CPU spp
source s periodic period=100
task a resource=CPU priority=1 cet=2
activate a from=s
task j resource=CPU priority=2 cet=4
activate j and=a period=100
)");
  try {
    parse_system_config(in);
    FAIL() << "expected error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at least two"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace hem::cpa
