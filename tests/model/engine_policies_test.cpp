// Engine coverage for the FlexRay-static and EDF resource policies,
// including the textual configuration front-end.

#include <gtest/gtest.h>

#include <sstream>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/textual_config.hpp"
#include "sched/edf.hpp"
#include "sched/flexray_static.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(EnginePoliciesTest, FlexRayResourceMatchesLocalAnalysis) {
  System sys;
  const auto fr = sys.add_resource({"FR", Policy::kFlexRayStatic, 50, 10});
  const auto f = sys.add_task({"f", fr, 1, sched::ExecutionTime(8)});
  sys.activate_external(f, periodic(500));
  const auto report = CpaEngine(sys).run();
  EXPECT_EQ(report.task("f").wcrt, 58);  // cycle + C

  sched::FlexRayStaticAnalysis local(
      {sched::FlexRayFrame{sched::TaskParams{"f", 1, sched::ExecutionTime(8), periodic(500)}}},
      50, 10);
  EXPECT_EQ(report.task("f").wcrt, local.analyze(0).wcrt);
}

TEST(EnginePoliciesTest, FlexRayFeedsDownstreamTasks) {
  System sys;
  const auto fr = sys.add_resource({"FR", Policy::kFlexRayStatic, 50, 10});
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto f = sys.add_task({"f", fr, 1, sched::ExecutionTime(8)});
  const auto rx = sys.add_task({"rx", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_packed(f, {{periodic(500), SignalCoupling::kTriggering}});
  sys.activate_unpacked(rx, f, 0);
  const auto report = CpaEngine(sys).run();
  EXPECT_TRUE(report.converged);
  // The signal is delayed by up to one FlexRay cycle: inner delta- shrinks.
  EXPECT_LT(report.task("rx").activation->delta_min(2), 500);
  EXPECT_GE(report.task("rx").activation->delta_min(2), 500 - (58 - 8) - 8);
}

TEST(EnginePoliciesTest, EdfResourceMatchesLocalAnalysis) {
  System sys;
  const auto edf = sys.add_resource({"edf", Policy::kEdf});
  TaskSpec a{"a", edf, 0, sched::ExecutionTime(2)};
  a.deadline = 4;
  TaskSpec b{"b", edf, 0, sched::ExecutionTime(6)};
  b.deadline = 20;
  const auto ta = sys.add_task(a);
  const auto tb = sys.add_task(b);
  sys.activate_external(ta, periodic(20));
  sys.activate_external(tb, periodic(20));
  const auto report = CpaEngine(sys).run();
  EXPECT_EQ(report.task("a").wcrt, 2);
  EXPECT_EQ(report.task("b").wcrt, 8);
}

TEST(EnginePoliciesTest, EdfWithoutDeadlineRejected) {
  System sys;
  const auto edf = sys.add_resource({"edf", Policy::kEdf});
  const auto t = sys.add_task({"t", edf, 0, sched::ExecutionTime(2)});
  sys.activate_external(t, periodic(20));
  EXPECT_THROW(CpaEngine(sys).run(), std::invalid_argument);
}

TEST(EnginePoliciesTest, FlexRayResourceValidation) {
  System sys;
  EXPECT_THROW(sys.add_resource({"FR", Policy::kFlexRayStatic, 0, 10}),
               std::invalid_argument);
  EXPECT_THROW(sys.add_resource({"FR", Policy::kFlexRayStatic, 50, 0}),
               std::invalid_argument);
  EXPECT_THROW(sys.add_resource({"FR", Policy::kFlexRayStatic, 50, 60}),
               std::invalid_argument);
}

TEST(EnginePoliciesTest, ConfigFrontEnd) {
  std::istringstream in(R"(
resource FR flexray cycle=50 slot=10
resource CPU edf
source s periodic period=500
source fast periodic period=30
task f resource=FR priority=1 cet=8
task a resource=CPU priority=0 cet=5 deadline=15
task b resource=CPU priority=0 cet=9 deadline=30
activate f from=s
activate a from=fast
activate b from=s
)");
  const auto parsed = parse_system_config(in);
  const auto report = CpaEngine(parsed.system).run();
  EXPECT_EQ(report.task("f").wcrt, 58);
  EXPECT_LE(report.task("a").wcrt, 15);
  EXPECT_LE(report.task("b").wcrt, 30);
}

TEST(EnginePoliciesTest, ConfigRejectsBadFlexRay) {
  std::istringstream in("resource FR flexray cycle=50\n");
  EXPECT_THROW(parse_system_config(in), std::invalid_argument);
}

}  // namespace
}  // namespace hem::cpa
