#include "model/sensitivity.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

System two_task_system(Time lp_cet) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto hp = sys.add_task({"hp", cpu, 1, sched::ExecutionTime(2)});
  const auto lp = sys.add_task({"lp", cpu, 2, sched::ExecutionTime(lp_cet)});
  sys.activate_external(hp, periodic(5));
  sys.activate_external(lp, periodic(20));
  return sys;
}

TEST(SensitivityTest, FeasibleSystemReportsFeasible) {
  const auto result = check_feasible(two_task_system(4), {{"lp", 10}});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.report.task("lp").wcrt, 8);
}

TEST(SensitivityTest, DeadlineMissReported) {
  const auto result = check_feasible(two_task_system(4), {{"lp", 7}});
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.reason.find("lp"), std::string::npos);
  EXPECT_NE(result.reason.find("8 > 7"), std::string::npos);
}

TEST(SensitivityTest, OverloadReportedAsInfeasible) {
  const auto result = check_feasible(two_task_system(100), {});
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.reason.empty());
}

TEST(SensitivityTest, MaxFeasibleCetMatchesHandComputation) {
  // lp with deadline 12: WCRT(lp, C) = C + 2 * ceil-ish interference.
  // C=4 -> 8; C=6 -> 12 (w = 6+2*eta(12)... w=6: +2*2=10, w=10: 10, hmm);
  // the binary search finds the exact frontier; verify by re-checking.
  const System base = two_task_system(1);
  const DeadlineMap deadlines{{"lp", 12}};
  const Time best = max_feasible_cet(base, "lp", 1, 50, deadlines);
  ASSERT_GE(best, 1);
  // best is feasible...
  System probe = base;
  probe.set_task_cet(base.task_id("lp"), sched::ExecutionTime(best));
  EXPECT_TRUE(check_feasible(probe, deadlines).feasible);
  // ...and best + 1 is not.
  probe.set_task_cet(base.task_id("lp"), sched::ExecutionTime(best + 1));
  EXPECT_FALSE(check_feasible(probe, deadlines).feasible);
}

TEST(SensitivityTest, MaxFeasibleValueReturnsLoMinusOneWhenHopeless) {
  const System base = two_task_system(1);
  EXPECT_EQ(max_feasible_cet(base, "lp", 30, 50, {{"lp", 5}}), 29);
}

TEST(SensitivityTest, MinFeasibleValueFindsPeriodFrontier) {
  // Shrink hp's period until lp misses deadline 12 (lp C=4).
  const System base = two_task_system(4);
  const TaskId hp = base.task_id("hp");
  const auto mutator = [hp](System& sys, Time period) {
    sys.activate_external(hp, StandardEventModel::periodic(period));
  };
  const DeadlineMap deadlines{{"lp", 12}};
  const Time frontier = min_feasible_value(base, mutator, 1, 20, deadlines);
  ASSERT_LE(frontier, 20);
  System probe = base;
  mutator(probe, frontier);
  EXPECT_TRUE(check_feasible(probe, deadlines).feasible);
  if (frontier > 1) {
    mutator(probe, frontier - 1);
    EXPECT_FALSE(check_feasible(probe, deadlines).feasible);
  }
}

TEST(SensitivityTest, MinFeasibleValueReturnsHiPlusOneWhenHopeless) {
  const System base = two_task_system(4);
  const TaskId hp = base.task_id("hp");
  const auto mutator = [hp](System& sys, Time period) {
    sys.activate_external(hp, StandardEventModel::periodic(period));
  };
  EXPECT_EQ(min_feasible_value(base, mutator, 1, 3, {{"lp", 5}}), 4);
}

TEST(SensitivityTest, PaperSystemHeadroomLargerUnderHem) {
  // How much can T3's CET grow before it misses a 250-tick deadline?
  // HEM gives far more headroom than the flat abstraction.
  scenarios::PaperSystemParams p;
  const System flat = scenarios::build_paper_system(p, false);
  const System hier = scenarios::build_paper_system(p, true);
  const DeadlineMap deadlines{{"T3", 250}};
  const Time flat_max = max_feasible_cet(flat, "T3", 1, 400, deadlines);
  const Time hem_max = max_feasible_cet(hier, "T3", 1, 400, deadlines);
  EXPECT_GT(hem_max, flat_max);
  EXPECT_GE(flat_max, 40);  // the paper's value itself is feasible
}

TEST(OptimizePrioritiesTest, FixesScrambledPaperSystem) {
  // Scramble CPU1's priorities so T3 (1000-period, CET 40) sits on top and
  // T1 (250-period, deadline 100) at the bottom - T1 then misses.  The
  // optimiser must find a working order.
  auto sys = scenarios::build_paper_system({}, true);
  sys.set_task_priority(sys.task_id("T1"), 3);
  sys.set_task_priority(sys.task_id("T3"), 1);
  const DeadlineMap deadlines{{"T1", 90}, {"T2", 450}, {"T3", 1000}};
  ASSERT_FALSE(check_feasible(sys, deadlines).feasible);  // scrambled misses

  const auto assignment = optimize_priorities(sys, "CPU1", deadlines);
  ASSERT_TRUE(assignment.has_value());
  EXPECT_TRUE(check_feasible(sys, deadlines).feasible);
  // The tight-deadline task cannot stay at the bottom.
  EXPECT_LT(assignment->at("T1"), assignment->at("T2"));
}

TEST(OptimizePrioritiesTest, InfeasibleReturnsNullopt) {
  System sys = two_task_system(4);
  // Both tasks cannot meet a 3-tick deadline whatever the order.
  const auto assignment = optimize_priorities(sys, "cpu", {{"hp", 3}, {"lp", 3}});
  EXPECT_FALSE(assignment.has_value());
}

TEST(OptimizePrioritiesTest, Validation) {
  System sys = two_task_system(4);
  EXPECT_THROW((void)optimize_priorities(sys, "nope", {}), std::invalid_argument);
}

TEST(SensitivityTest, EmptyIntervalRejected) {
  const System base = two_task_system(4);
  EXPECT_THROW(max_feasible_cet(base, "lp", 10, 5, {}), std::invalid_argument);
}

}  // namespace
}  // namespace hem::cpa
