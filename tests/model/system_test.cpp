#include "model/system.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(SystemTest, BuildsValidSystem) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t1 = sys.add_task({"t1", cpu, 1, sched::ExecutionTime(5)});
  const auto t2 = sys.add_task({"t2", cpu, 2, sched::ExecutionTime(7)});
  sys.activate_external(t1, periodic(100));
  sys.activate_by(t2, {t1});
  EXPECT_NO_THROW(sys.validate());
  EXPECT_EQ(sys.task_id("t2"), t2);
  EXPECT_THROW((void)sys.task_id("nope"), std::invalid_argument);
}

TEST(SystemTest, RejectsTaskWithoutActivation) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(SystemTest, RejectsDuplicateTaskNames) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  EXPECT_THROW(sys.add_task({"t", cpu, 2, sched::ExecutionTime(5)}), std::invalid_argument);
}

TEST(SystemTest, RejectsUnknownResource) {
  System sys;
  EXPECT_THROW(sys.add_task({"t", 3, 1, sched::ExecutionTime(5)}), std::invalid_argument);
}

TEST(SystemTest, RejectsSelfActivation) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  EXPECT_THROW(sys.activate_by(t, {t}), std::invalid_argument);
}

TEST(SystemTest, RejectsTdmaWithoutCycleOrSlot) {
  System sys;
  EXPECT_THROW(sys.add_resource({"bus", Policy::kTdma, 0}), std::invalid_argument);
  const auto bus = sys.add_resource({"bus", Policy::kTdma, 100});
  const auto t = sys.add_task({"t", bus, 1, sched::ExecutionTime(5)});  // no slot
  sys.activate_external(t, periodic(100));
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(SystemTest, UnpackRequiresPackedFrame) {
  System sys;
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu, 1, sched::ExecutionTime(5)});
  const auto b = sys.add_task({"b", cpu, 2, sched::ExecutionTime(5)});
  sys.activate_external(a, periodic(100));
  sys.activate_unpacked(b, a, 0);
  EXPECT_THROW(sys.validate(), std::invalid_argument);  // a is not packed
}

TEST(SystemTest, UnpackIndexInRange) {
  System sys;
  const auto bus = sys.add_resource({"bus", Policy::kSpnpCan});
  const auto cpu = sys.add_resource({"cpu", Policy::kSppPreemptive});
  const auto f = sys.add_task({"f", bus, 1, sched::ExecutionTime(4)});
  const auto t = sys.add_task({"t", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_packed(f, {{periodic(100), SignalCoupling::kTriggering}});
  sys.activate_unpacked(t, f, 1);
  EXPECT_THROW(sys.validate(), std::invalid_argument);  // only inner 0 exists
}

}  // namespace
}  // namespace hem::cpa
