#include "sim/cpu_sim.hpp"

#include <gtest/gtest.h>

namespace hem::sim {
namespace {

TEST(CpuSimTest, SingleJobRunsToCompletion) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  CpuSim cpu(cal, {{"t", 1, 10, 10}}, true, rng);
  cal.at(5, [&] { cpu.activate(0); });
  cal.run_until(1000);
  ASSERT_EQ(cpu.responses(0).size(), 1u);
  EXPECT_EQ(cpu.responses(0)[0], 10);
  EXPECT_EQ(cpu.activations(0)[0], 5);
}

TEST(CpuSimTest, PreemptionByHigherPriority) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  CpuSim cpu(cal, {{"hp", 1, 4, 4}, {"lp", 2, 10, 10}}, true, rng);
  cal.at(0, [&] { cpu.activate(1); });
  cal.at(3, [&] { cpu.activate(0); });
  cal.run_until(1000);
  // lp runs [0,3), preempted, hp runs [3,7), lp resumes [7,14).
  ASSERT_EQ(cpu.responses(0).size(), 1u);
  EXPECT_EQ(cpu.responses(0)[0], 4);
  ASSERT_EQ(cpu.responses(1).size(), 1u);
  EXPECT_EQ(cpu.responses(1)[0], 14);
}

TEST(CpuSimTest, QueuedActivationsServeFifo) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  CpuSim cpu(cal, {{"t", 1, 10, 10}}, true, rng);
  cal.at(0, [&] {
    cpu.activate(0);
    cpu.activate(0);
  });
  cal.run_until(1000);
  ASSERT_EQ(cpu.responses(0).size(), 2u);
  EXPECT_EQ(cpu.responses(0)[0], 10);
  EXPECT_EQ(cpu.responses(0)[1], 20);
  EXPECT_EQ(cpu.worst_response(0), 20);
}

TEST(CpuSimTest, NestedPreemptionAccounting) {
  // Three levels: lo starts, mid preempts, hp preempts mid.
  EventCalendar cal;
  std::mt19937_64 rng(1);
  CpuSim cpu(cal, {{"hp", 1, 2, 2}, {"mid", 2, 5, 5}, {"lo", 3, 10, 10}}, true, rng);
  cal.at(0, [&] { cpu.activate(2); });
  cal.at(1, [&] { cpu.activate(1); });
  cal.at(2, [&] { cpu.activate(0); });
  cal.run_until(1000);
  // hp: [2,4) -> R=2.  mid: [1,2) ran 1, resumes [4,8) -> R=7.
  // lo: ran [0,1), resumes [8,17) -> R=17.
  EXPECT_EQ(cpu.responses(0)[0], 2);
  EXPECT_EQ(cpu.responses(1)[0], 7);
  EXPECT_EQ(cpu.responses(2)[0], 17);
}

TEST(CpuSimTest, SimultaneousActivationPriorityOrder) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  CpuSim cpu(cal, {{"hp", 1, 3, 3}, {"lp", 2, 3, 3}}, true, rng);
  cal.at(0, [&] {
    cpu.activate(1);  // lp queued first...
    cpu.activate(0);  // ...but hp preempts before any time elapses
  });
  cal.run_until(100);
  EXPECT_EQ(cpu.responses(0)[0], 3);
  EXPECT_EQ(cpu.responses(1)[0], 6);
}

TEST(CpuSimTest, ZeroRemainingEdgeCase) {
  // hp arrives exactly when lp would complete; arrival events were scheduled
  // first, so lp is preempted with zero remaining and completes right after
  // hp.
  EventCalendar cal;
  std::mt19937_64 rng(1);
  CpuSim cpu(cal, {{"hp", 1, 5, 5}, {"lp", 2, 10, 10}}, true, rng);
  cal.at(10, [&] { cpu.activate(0); });
  cal.at(0, [&] { cpu.activate(1); });
  cal.run_until(1000);
  EXPECT_EQ(cpu.responses(0)[0], 5);
  EXPECT_EQ(cpu.responses(1)[0], 15);
}

TEST(CpuSimTest, ValidationErrors) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  EXPECT_THROW(CpuSim(cal, {}, true, rng), std::invalid_argument);
  EXPECT_THROW(CpuSim(cal, {{"a", 1, 5, 5}, {"b", 1, 5, 5}}, true, rng),
               std::invalid_argument);
  EXPECT_THROW(CpuSim(cal, {{"a", 1, 5, 4}}, true, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hem::sim
