#include "sim/com_sim.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace hem::sim {
namespace {

struct ComFixture : ::testing::Test {
  EventCalendar cal;
  std::mt19937_64 rng{1};
};

TEST_F(ComFixture, TriggeringSignalSendsFrame) {
  ComSim com(cal, {{"F", false, 0, {{"s", true}}}});
  BusSim bus(cal, {{"F", 1, 10, 10, [&] { com.latch(0); }, [&] { com.deliver(0); }}}, true,
             rng);
  com.attach_bus(bus);
  cal.at(5, [&] { com.write_signal(0, 0); });
  cal.run_until(1000);
  ASSERT_EQ(com.deliveries(0, 0).size(), 1u);
  EXPECT_EQ(com.deliveries(0, 0)[0], 15);
}

TEST_F(ComFixture, PendingSignalWaitsForTimer) {
  ComSim com(cal, {{"F", true, 100, {{"s", false}}}});
  BusSim bus(cal, {{"F", 1, 10, 10, [&] { com.latch(0); }, [&] { com.deliver(0); }}}, true,
             rng);
  com.attach_bus(bus);
  com.start_timers(500);
  cal.at(5, [&] { com.write_signal(0, 0); });  // pending: no transmission request
  cal.run_until(1000);
  // Frames go out at 0,100,...; the write at 5 rides the t=100 frame.
  ASSERT_EQ(com.deliveries(0, 0).size(), 1u);
  EXPECT_EQ(com.deliveries(0, 0)[0], 110);
}

TEST_F(ComFixture, FreshFlagClearedOnLatch) {
  ComSim com(cal, {{"F", true, 100, {{"s", false}}}});
  BusSim bus(cal, {{"F", 1, 10, 10, [&] { com.latch(0); }, [&] { com.deliver(0); }}}, true,
             rng);
  com.attach_bus(bus);
  com.start_timers(350);
  cal.at(5, [&] { com.write_signal(0, 0); });
  cal.run_until(1000);
  // Only the first frame after the write carries a fresh value; frames at
  // 200 and 300 carry stale data.
  EXPECT_EQ(com.deliveries(0, 0).size(), 1u);
}

TEST_F(ComFixture, OverwritingBeforeLatchDeliversOnce) {
  ComSim com(cal, {{"F", true, 100, {{"s", false}}}});
  BusSim bus(cal, {{"F", 1, 10, 10, [&] { com.latch(0); }, [&] { com.deliver(0); }}}, true,
             rng);
  com.attach_bus(bus);
  com.start_timers(150);
  cal.at(20, [&] { com.write_signal(0, 0); });
  cal.at(40, [&] { com.write_signal(0, 0); });  // overwrites the register
  cal.run_until(1000);
  // Both writes ride the t=100 frame as ONE fresh value.
  EXPECT_EQ(com.deliveries(0, 0).size(), 1u);
  EXPECT_EQ(com.deliveries(0, 0)[0], 110);
}

TEST_F(ComFixture, SignalDuringTransmissionRidesNextFrame) {
  ComSim com(cal, {{"F", false, 0, {{"a", true}, {"b", false}}}});
  BusSim bus(cal, {{"F", 1, 10, 10, [&] { com.latch(0); }, [&] { com.deliver(0); }}}, true,
             rng);
  com.attach_bus(bus);
  cal.at(0, [&] { com.write_signal(0, 0); });  // frame 1: [0, 10)
  cal.at(5, [&] { com.write_signal(0, 1); });  // b written mid-transmission
  cal.at(30, [&] { com.write_signal(0, 0); }); // frame 2: [30, 40)
  cal.run_until(1000);
  ASSERT_EQ(com.deliveries(0, 1).size(), 1u);
  EXPECT_EQ(com.deliveries(0, 1)[0], 40);  // b travels in the SECOND frame
}

TEST_F(ComFixture, DeliverCallbackFires) {
  ComSim com(cal, {{"F", false, 0, {{"s", true}}}});
  BusSim bus(cal, {{"F", 1, 10, 10, [&] { com.latch(0); }, [&] { com.deliver(0); }}}, true,
             rng);
  com.attach_bus(bus);
  std::vector<std::pair<std::size_t, std::size_t>> delivered;
  com.on_deliver = [&](std::size_t f, std::size_t s) { delivered.emplace_back(f, s); };
  cal.at(0, [&] { com.write_signal(0, 0); });
  cal.run_until(100);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST_F(ComFixture, ValidationErrors) {
  EXPECT_THROW(ComSim(cal, {}), std::invalid_argument);
  EXPECT_THROW(ComSim(cal, {{"F", false, 0, {}}}), std::invalid_argument);
  EXPECT_THROW(ComSim(cal, {{"F", true, 0, {{"s", false}}}}), std::invalid_argument);
  ComSim com(cal, {{"F", false, 0, {{"s", true}}}});
  EXPECT_THROW(com.write_signal(0, 0), std::logic_error);  // bus not attached
}

TEST(SimulatorTest, EndToEndSmoke) {
  SimConfig cfg;
  cfg.source_names = {"S"};
  cfg.sources = {SourceSpec{100, 0, 0, 0}};
  SimFrame f;
  f.name = "F";
  f.priority = 1;
  f.c_best = f.c_worst = 4;
  f.signals = {SimSignal{"s", 0, true, "T"}};
  cfg.frames = {f};
  cfg.tasks = {SimTask{"T", 1, 10, 10}};
  cfg.horizon = 10'000;
  cfg.mode = GenMode::kNominal;
  const auto result = Simulator(cfg).run();
  // ~100 source events -> ~100 frames -> ~100 task activations.
  EXPECT_NEAR(static_cast<double>(result.frame_completions.at("F").size()), 100, 2);
  EXPECT_NEAR(static_cast<double>(result.tasks.at("T").activations.size()), 100, 2);
  EXPECT_EQ(result.tasks.at("T").wcrt, 10);
  // Every frame completion is 4 after its trigger (idle bus).
  EXPECT_EQ(result.frame_completions.at("F")[0], 4);
  EXPECT_EQ(result.signal_deliveries.at("F.s")[0], 4);
}

}  // namespace
}  // namespace hem::sim
