#include "sim/edf_cpu_sim.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/standard_event_model.hpp"
#include "sched/edf.hpp"
#include "sim/source_generator.hpp"

namespace hem::sim {
namespace {

TEST(EdfCpuSimTest, EarlierDeadlineWins) {
  EventCalendar cal;
  EdfCpuSim cpu(cal, {{"urgent", 3, 5}, {"lazy", 10, 100}});
  cal.at(0, [&] { cpu.activate(1); });
  cal.at(2, [&] { cpu.activate(0); });
  cal.run_until(1000);
  // lazy runs [0,2), urgent preempts [2,5), lazy resumes [5,13).
  EXPECT_EQ(cpu.responses(0)[0], 3);
  EXPECT_EQ(cpu.responses(1)[0], 13);
  EXPECT_EQ(cpu.deadline_misses(), 0);
}

TEST(EdfCpuSimTest, LaterDeadlineDoesNotPreempt) {
  EventCalendar cal;
  EdfCpuSim cpu(cal, {{"loose", 4, 50}, {"running", 10, 20}});
  cal.at(0, [&] { cpu.activate(1); });
  cal.at(2, [&] { cpu.activate(0); });  // deadline 52 > 20: no preemption
  cal.run_until(1000);
  EXPECT_EQ(cpu.responses(1)[0], 10);
  EXPECT_EQ(cpu.responses(0)[0], 12);
}

TEST(EdfCpuSimTest, CountsDeadlineMisses) {
  EventCalendar cal;
  EdfCpuSim cpu(cal, {{"a", 10, 8}});  // cannot make its own deadline
  cal.at(0, [&] { cpu.activate(0); });
  cal.run_until(100);
  EXPECT_EQ(cpu.deadline_misses(), 1);
}

TEST(EdfCpuSimTest, ValidationErrors) {
  EventCalendar cal;
  EXPECT_THROW(EdfCpuSim(cal, {}), std::invalid_argument);
  EXPECT_THROW(EdfCpuSim(cal, {{"t", 0, 5}}), std::invalid_argument);
  EXPECT_THROW(EdfCpuSim(cal, {{"t", 5, 0}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Validation of EdfAnalysis: no deadline miss when schedulable; observed
// responses within the analytic WCRT.

class RandomEdf : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomEdf, ScheduleMatchesAnalysis) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> n_dist(2, 4);
  std::uniform_int_distribution<Time> period_dist(40, 300);

  const int n = n_dist(rng);
  std::vector<sched::EdfTask> analysis_tasks;
  std::vector<EdfCpuSim::TaskDef> sim_tasks;
  std::vector<Time> periods;
  double util = 0.0;
  for (int i = 0; i < n; ++i) {
    const Time period = period_dist(rng);
    const double budget = (0.85 - util) / (n - i);
    const Time cet =
        std::max<Time>(1, static_cast<Time>(budget * static_cast<double>(period)));
    util += static_cast<double>(cet) / static_cast<double>(period);
    // Constrained deadline in [cet + period/4, period].
    std::uniform_int_distribution<Time> dl_dist(cet + period / 4, period);
    const Time deadline = dl_dist(rng);
    const std::string name = "t" + std::to_string(i);
    analysis_tasks.push_back(sched::EdfTask{
        sched::TaskParams{name, 0, sched::ExecutionTime(cet),
                          StandardEventModel::periodic(period)},
        deadline});
    sim_tasks.push_back({name, cet, deadline});
    periods.push_back(period);
  }

  const sched::EdfAnalysis analysis(analysis_tasks);
  const bool schedulable = analysis.schedulable();

  for (const auto mode : {GenMode::kNominal, GenMode::kEarliest}) {
    EventCalendar cal;
    EdfCpuSim cpu(cal, sim_tasks);
    const Time horizon = 60'000;
    for (int i = 0; i < n; ++i) {
      const auto arrivals = generate_arrivals({periods[i], 0, 0, 0}, horizon, mode, rng);
      for (const Time a : arrivals)
        cal.at(a, [&cpu, i] { cpu.activate(static_cast<std::size_t>(i)); });
    }
    cal.run_until(horizon + 5'000);

    if (schedulable) {
      EXPECT_EQ(cpu.deadline_misses(), 0) << "seed=" << GetParam();
      const auto bounds = analysis.analyze_all();
      for (int i = 0; i < n; ++i)
        EXPECT_LE(cpu.worst_response(static_cast<std::size_t>(i)), bounds[i].wcrt)
            << "seed=" << GetParam() << " task=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEdf, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hem::sim
