#include "sim/quantum_cpu_sim.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/standard_event_model.hpp"
#include "sched/round_robin.hpp"
#include "sim/source_generator.hpp"

namespace hem::sim {
namespace {

TEST(QuantumCpuSimTest, SingleTaskRunsThrough) {
  EventCalendar cal;
  QuantumCpuSim cpu(cal, {{"t", 10, 4}});
  cal.at(0, [&] { cpu.activate(0); });
  cal.run_until(1000);
  ASSERT_EQ(cpu.responses(0).size(), 1u);
  EXPECT_EQ(cpu.responses(0)[0], 10);  // quanta are contiguous when alone
}

TEST(QuantumCpuSimTest, TwoTasksInterleaveByQuantum) {
  EventCalendar cal;
  QuantumCpuSim cpu(cal, {{"a", 10, 5}, {"b", 10, 5}});
  cal.at(0, [&] {
    cpu.activate(0);
    cpu.activate(1);
  });
  cal.run_until(1000);
  // Slices: a[0,5) b[5,10) a[10,15) b[15,20).
  EXPECT_EQ(cpu.responses(0)[0], 15);
  EXPECT_EQ(cpu.responses(1)[0], 20);
}

TEST(QuantumCpuSimTest, CompletionInsideSliceFreesCpu) {
  EventCalendar cal;
  QuantumCpuSim cpu(cal, {{"short", 3, 10}, {"long", 12, 10}});
  cal.at(0, [&] {
    cpu.activate(0);
    cpu.activate(1);
  });
  cal.run_until(1000);
  EXPECT_EQ(cpu.responses(0)[0], 3);
  EXPECT_EQ(cpu.responses(1)[0], 15);
}

TEST(QuantumCpuSimTest, FifoWithinOneTask) {
  EventCalendar cal;
  QuantumCpuSim cpu(cal, {{"t", 6, 3}});
  cal.at(0, [&] {
    cpu.activate(0);
    cpu.activate(0);
  });
  cal.run_until(1000);
  ASSERT_EQ(cpu.responses(0).size(), 2u);
  EXPECT_EQ(cpu.responses(0)[0], 6);
  EXPECT_EQ(cpu.responses(0)[1], 12);
}

TEST(QuantumCpuSimTest, ValidationErrors) {
  EventCalendar cal;
  EXPECT_THROW(QuantumCpuSim(cal, {}), std::invalid_argument);
  EXPECT_THROW(QuantumCpuSim(cal, {{"t", 0, 3}}), std::invalid_argument);
  EXPECT_THROW(QuantumCpuSim(cal, {{"t", 3, 0}}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Validation of the conservative RoundRobinAnalysis against the simulator.

class RandomRoundRobin : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRoundRobin, SimulatedResponsesWithinAnalyticBounds) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> n_dist(2, 4);
  std::uniform_int_distribution<Time> period_dist(80, 400);
  std::uniform_int_distribution<Time> quantum_dist(2, 10);

  const int n = n_dist(rng);
  std::vector<sched::RoundRobinTask> analysis_tasks;
  std::vector<QuantumCpuSim::TaskDef> sim_tasks;
  std::vector<Time> periods;
  double util = 0.0;
  for (int i = 0; i < n; ++i) {
    const Time period = period_dist(rng);
    const double budget = (0.7 - util) / (n - i);
    const Time cet =
        std::max<Time>(1, static_cast<Time>(budget * static_cast<double>(period)));
    util += static_cast<double>(cet) / static_cast<double>(period);
    const Time quantum = quantum_dist(rng);
    const std::string name = "t" + std::to_string(i);
    analysis_tasks.push_back(sched::RoundRobinTask{
        sched::TaskParams{name, 0, sched::ExecutionTime(cet),
                          StandardEventModel::periodic(period)},
        quantum});
    sim_tasks.push_back({name, cet, quantum});
    periods.push_back(period);
  }

  const sched::RoundRobinAnalysis analysis(analysis_tasks);
  const auto bounds = analysis.analyze_all();

  for (const auto mode : {GenMode::kNominal, GenMode::kRandom}) {
    EventCalendar cal;
    QuantumCpuSim cpu(cal, sim_tasks);
    const Time horizon = 60'000;
    for (int i = 0; i < n; ++i) {
      const auto arrivals = generate_arrivals({periods[i], 0, 0, 0}, horizon, mode, rng);
      for (const Time a : arrivals)
        cal.at(a, [&cpu, i] { cpu.activate(static_cast<std::size_t>(i)); });
    }
    cal.run_until(horizon + 5'000);
    for (int i = 0; i < n; ++i) {
      EXPECT_LE(cpu.worst_response(static_cast<std::size_t>(i)), bounds[i].wcrt)
          << "seed=" << GetParam() << " task=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundRobin, ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace hem::sim
