#include "sim/bus_sim.hpp"

#include <gtest/gtest.h>

namespace hem::sim {
namespace {

TEST(BusSimTest, TransmitsImmediatelyWhenIdle) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  BusSim bus(cal, {{"f", 1, 10, 10, nullptr, nullptr}}, true, rng);
  cal.at(5, [&] { bus.request(0); });
  cal.run_until(1000);
  ASSERT_EQ(bus.completions(0).size(), 1u);
  EXPECT_EQ(bus.completions(0)[0], 15);
}

TEST(BusSimTest, NonPreemptiveArbitration) {
  // lo starts at 0; hi requested at 1 must wait until lo completes at 10.
  EventCalendar cal;
  std::mt19937_64 rng(1);
  BusSim bus(cal,
             {{"hi", 1, 5, 5, nullptr, nullptr}, {"lo", 2, 10, 10, nullptr, nullptr}}, true,
             rng);
  cal.at(0, [&] { bus.request(1); });
  cal.at(1, [&] { bus.request(0); });
  cal.run_until(1000);
  ASSERT_EQ(bus.completions(1).size(), 1u);
  EXPECT_EQ(bus.completions(1)[0], 10);
  ASSERT_EQ(bus.completions(0).size(), 1u);
  EXPECT_EQ(bus.completions(0)[0], 15);
}

TEST(BusSimTest, PriorityWinsWhenBothPending) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  BusSim bus(cal,
             {{"hi", 1, 5, 5, nullptr, nullptr}, {"lo", 2, 10, 10, nullptr, nullptr}}, true,
             rng);
  cal.at(0, [&] {
    bus.request(1);
    bus.request(0);  // same instant: queued before the bus picks next
  });
  cal.run_until(1000);
  // request(1) sees an idle bus and starts immediately (non-preemptive);
  // hi then waits.
  EXPECT_EQ(bus.completions(1)[0], 10);
  EXPECT_EQ(bus.completions(0)[0], 15);
}

TEST(BusSimTest, QueuedRequestsSerialise) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  BusSim bus(cal, {{"f", 1, 10, 10, nullptr, nullptr}}, true, rng);
  cal.at(0, [&] {
    bus.request(0);
    bus.request(0);
    bus.request(0);
  });
  cal.run_until(1000);
  ASSERT_EQ(bus.completions(0).size(), 3u);
  EXPECT_EQ(bus.completions(0)[0], 10);
  EXPECT_EQ(bus.completions(0)[1], 20);
  EXPECT_EQ(bus.completions(0)[2], 30);
}

TEST(BusSimTest, StartAndCompleteHooksFire) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  std::vector<Time> starts, ends;
  BusSim bus(cal,
             {{"f", 1, 10, 10, [&] { starts.push_back(cal.now()); },
               [&] { ends.push_back(cal.now()); }}},
             true, rng);
  cal.at(3, [&] { bus.request(0); });
  cal.run_until(1000);
  EXPECT_EQ(starts, (std::vector<Time>{3}));
  EXPECT_EQ(ends, (std::vector<Time>{13}));
}

TEST(BusSimTest, RandomDurationsStayInRange) {
  EventCalendar cal;
  std::mt19937_64 rng(7);
  std::vector<Time> starts;
  BusSim bus(cal, {{"f", 1, 5, 15, [&] { starts.push_back(cal.now()); }, nullptr}}, false, rng);
  for (Time t = 0; t < 1000; t += 50) cal.at(t, [&] { bus.request(0); });
  cal.run_until(5000);
  ASSERT_EQ(bus.completions(0).size(), starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const Time d = bus.completions(0)[i] - starts[i];
    EXPECT_GE(d, 5);
    EXPECT_LE(d, 15);
  }
}

TEST(BusSimTest, ValidationErrors) {
  EventCalendar cal;
  std::mt19937_64 rng(1);
  EXPECT_THROW(BusSim(cal, {}, true, rng), std::invalid_argument);
  EXPECT_THROW(BusSim(cal,
                      {{"a", 1, 5, 5, nullptr, nullptr}, {"b", 1, 5, 5, nullptr, nullptr}},
                      true, rng),
               std::invalid_argument);
  EXPECT_THROW(BusSim(cal, {{"a", 1, 5, 4, nullptr, nullptr}}, true, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace hem::sim
