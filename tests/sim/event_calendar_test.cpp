#include "sim/event_calendar.hpp"

#include <gtest/gtest.h>

namespace hem::sim {
namespace {

TEST(EventCalendarTest, RunsInTimeOrder) {
  EventCalendar cal;
  std::vector<int> order;
  cal.at(30, [&] { order.push_back(3); });
  cal.at(10, [&] { order.push_back(1); });
  cal.at(20, [&] { order.push_back(2); });
  cal.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cal.now(), 30);
}

TEST(EventCalendarTest, StableOrderAtEqualTimes) {
  EventCalendar cal;
  std::vector<int> order;
  cal.at(10, [&] { order.push_back(1); });
  cal.at(10, [&] { order.push_back(2); });
  cal.at(10, [&] { order.push_back(3); });
  cal.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventCalendarTest, HandlersCanScheduleMore) {
  EventCalendar cal;
  std::vector<Time> fired;
  std::function<void()> tick = [&] {
    fired.push_back(cal.now());
    if (cal.now() < 50) cal.after(10, tick);
  };
  cal.at(0, tick);
  cal.run_until(1000);
  EXPECT_EQ(fired, (std::vector<Time>{0, 10, 20, 30, 40, 50}));
}

TEST(EventCalendarTest, RunUntilStopsAtHorizon) {
  EventCalendar cal;
  int count = 0;
  cal.at(10, [&] { ++count; });
  cal.at(20, [&] { ++count; });
  cal.at(30, [&] { ++count; });
  cal.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(cal.empty());
}

TEST(EventCalendarTest, RejectsSchedulingIntoThePast) {
  EventCalendar cal;
  cal.at(10, [] {});
  cal.step();
  EXPECT_THROW(cal.at(5, [] {}), std::invalid_argument);
}

}  // namespace
}  // namespace hem::sim
