#include "sim/source_generator.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sim/trace_check.hpp"

namespace hem::sim {
namespace {

TEST(SourceGeneratorTest, NominalIsStrictlyPeriodic) {
  std::mt19937_64 rng(1);
  const auto t = generate_arrivals({100, 0, 0, 0}, 1000, GenMode::kNominal, rng);
  ASSERT_EQ(t.size(), 11u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], Time(100 * i));
}

TEST(SourceGeneratorTest, PhaseShiftsTheGrid) {
  std::mt19937_64 rng(1);
  const auto t = generate_arrivals({100, 0, 0, 37}, 1000, GenMode::kNominal, rng);
  EXPECT_EQ(t.front(), 37);
  EXPECT_EQ(t[1], 137);
}

TEST(SourceGeneratorTest, EarliestModeCreatesInitialBurst) {
  std::mt19937_64 rng(1);
  // P=100, J=250: events 0,1,2 all clamp to 0 (earliest possible).
  const auto t = generate_arrivals({100, 250, 0, 0}, 1000, GenMode::kEarliest, rng);
  ASSERT_GE(t.size(), 4u);
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 0);
  EXPECT_EQ(t[2], 0);
  EXPECT_EQ(t[3], 50);  // 3*100 - 250
}

TEST(SourceGeneratorTest, DminRespectedInEarliestMode) {
  std::mt19937_64 rng(1);
  const auto t = generate_arrivals({100, 250, 20, 0}, 1000, GenMode::kEarliest, rng);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GE(t[i] - t[i - 1], 20);
}

struct GenCase {
  Time period, jitter, dmin;
  GenMode mode;
};

class GeneratorConformance : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorConformance, TraceConformsToItsModel) {
  const auto& c = GetParam();
  const auto model = std::make_shared<StandardEventModel>(c.period, c.jitter, c.dmin);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::mt19937_64 rng(seed);
    const auto trace =
        generate_arrivals({c.period, c.jitter, c.dmin, 0}, 20'000, c.mode, rng);
    const auto violations =
        check_trace_against_model(trace, *model, 3 * c.period + c.jitter, 13, 40);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << (violations.empty() ? "" : violations.front());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneratorConformance,
    ::testing::Values(GenCase{100, 0, 0, GenMode::kNominal},
                      GenCase{100, 0, 0, GenMode::kRandom},
                      GenCase{100, 30, 0, GenMode::kRandom},
                      GenCase{100, 30, 0, GenMode::kEarliest},
                      GenCase{100, 250, 0, GenMode::kEarliest},
                      GenCase{100, 250, 10, GenMode::kRandom},
                      GenCase{250, 0, 0, GenMode::kRandom},
                      GenCase{450, 120, 30, GenMode::kEarliest},
                      GenCase{1000, 999, 0, GenMode::kRandom}));

TEST(SourceGeneratorTest, RejectsInvalidSpecs) {
  std::mt19937_64 rng(1);
  EXPECT_THROW(generate_arrivals({0, 0, 0, 0}, 100, GenMode::kNominal, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_arrivals({100, -1, 0, 0}, 100, GenMode::kNominal, rng),
               std::invalid_argument);
  EXPECT_THROW(generate_arrivals({100, 0, 150, 0}, 100, GenMode::kNominal, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace hem::sim
