#include "exec/batch_runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/journal.hpp"
#include "exec/worker_process.hpp"

namespace hem::exec {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& name) : path_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string write(const std::string& name, const std::string& text) const {
    const fs::path p = path_ / name;
    std::ofstream out(p, std::ios::binary);
    out << text;
    return p.string();
  }
  [[nodiscard]] std::string file(const std::string& name) const { return (path_ / name).string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

const char* kTinyConfig =
    "resource CPU1 spp\n"
    "source s1 periodic period=10\n"
    "task A resource=CPU1 priority=1 cet=2\n"
    "activate A from=s1\n";

const char* kTinyConfig2 =
    "resource CPU1 spp\n"
    "source s1 periodic period=20\n"
    "task B resource=CPU1 priority=1 cet=3\n"
    "activate B from=s1\n";

// Matches examples/divergent_fixpoint.hemcpa: load 1 + 3.3e-10, linear
// busy-window divergence for ~3e9 fixpoint steps once the overload
// pre-check and default busy-window budgets are lifted.
const char* kDivergentConfig =
    "resource R spp\n"
    "source s periodic period=3000000000\n"
    "task H resource=R priority=1 cet=3000000001\n"
    "activate H from=s\n"
    "option overload_check=off\n";

// Six-task activation chain across six resources: one task's output model
// settles per global iteration, so convergence needs ~8 iterations.  With
// max_iterations=3 the first attempt ends !converged (a transient,
// retryable outcome); the retry at 3 * retry_budget_factor iterations
// converges.  Deterministic — no wall-clock dependence.
std::string chain_config() {
  std::ostringstream os;
  for (int i = 1; i <= 6; ++i) os << "resource R" << i << " spp\n";
  os << "source s periodic period=100\n";
  for (int i = 1; i <= 6; ++i)
    os << "task T" << i << " resource=R" << i << " priority=1 cet=1\n";
  os << "activate T1 from=s\n";
  for (int i = 2; i <= 6; ++i) os << "activate T" << i << " from=T" << (i - 1) << "\n";
  return os.str();
}

std::string csv_of(const BatchReport& report) {
  std::ostringstream os;
  report.write_csv(os);
  return os.str();
}

TEST(BatchRunnerTest, AllJobsComplete) {
  TempDir dir("batch_all_done");
  const auto a = dir.write("a.hemcpa", kTinyConfig);
  const auto b = dir.write("b.hemcpa", kTinyConfig2);
  BatchOptions opt;
  opt.journal_path = dir.file("out.journal");
  BatchRunner runner({a, b}, opt);
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kDone);
  EXPECT_EQ(report.jobs[1].state, JobState::kDone);
  EXPECT_EQ(report.jobs[0].attempts, 1);
  EXPECT_TRUE(report.jobs[0].converged);
  EXPECT_FALSE(report.jobs[0].rows.empty());
  EXPECT_FALSE(report.interrupted);
  EXPECT_EQ(report.exit_code(), 0);

  const std::string csv = csv_of(report);
  EXPECT_NE(csv.find("config,task,resource,bcrt,wcrt"), std::string::npos);
  EXPECT_NE(csv.find(",A,CPU1,"), std::string::npos);
  EXPECT_NE(csv.find(",B,CPU1,"), std::string::npos);
}

TEST(BatchRunnerTest, ParseErrorIsIsolatedToItsJob) {
  TempDir dir("batch_firewall");
  const auto bad = dir.write("bad.hemcpa", "task oops nonsense\n");
  const auto good = dir.write("good.hemcpa", kTinyConfig);
  BatchRunner runner({bad, good}, BatchOptions{});
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kFailed);
  EXPECT_FALSE(report.jobs[0].transient);  // config errors never retry
  EXPECT_FALSE(report.jobs[0].message.empty());
  EXPECT_EQ(report.jobs[1].state, JobState::kDone);  // the pool survives
  EXPECT_EQ(report.exit_code(), 5);
}

TEST(BatchRunnerTest, UnreadableConfigFailsWithoutCrashing) {
  TempDir dir("batch_unreadable");
  const auto good = dir.write("good.hemcpa", kTinyConfig);
  BatchRunner runner({dir.file("missing.hemcpa"), good}, BatchOptions{});
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kFailed);
  EXPECT_EQ(report.jobs[0].attempts, 0);
  EXPECT_EQ(report.jobs[1].state, JobState::kDone);
  EXPECT_EQ(report.exit_code(), 5);
}

TEST(BatchRunnerTest, WatchdogSoftCancelsDivergentJob) {
  TempDir dir("batch_watchdog");
  const auto divergent = dir.write("divergent.hemcpa", kDivergentConfig);
  const auto good = dir.write("good.hemcpa", kTinyConfig);
  BatchOptions opt;
  opt.job_budget_ms = 300;
  opt.max_retries = 0;
  // Lift the default busy-window budgets so the divergence is real.
  opt.fixpoint_max_iterations = 8000000000LL;
  opt.fixpoint_max_window = static_cast<Time>(8000000000000000000LL);
  opt.journal_path = dir.file("out.journal");
  BatchRunner runner({divergent, good}, opt);
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kCancelled);
  EXPECT_NE(report.jobs[0].message.find("watchdog"), std::string::npos)
      << report.jobs[0].message;
  EXPECT_EQ(report.jobs[1].state, JobState::kDone);
  EXPECT_EQ(report.watchdog_cancels, 1);
  EXPECT_EQ(report.abandoned, 0);  // cooperative cancel honoured, no escalation
  EXPECT_EQ(report.exit_code(), 5);

  // The cancelled job is terminal and journaled: a resume must NOT re-run it.
  Journal j(opt.journal_path);
  ASSERT_TRUE(j.load());
  ASSERT_EQ(j.entries().size(), 2u);
}

TEST(BatchRunnerTest, TransientFailureRetriesWithScaledBudget) {
  TempDir dir("batch_retry");
  const auto chain = dir.write("chain.hemcpa", chain_config());
  BatchOptions opt;
  opt.max_iterations = 3;        // first attempt cannot converge
  opt.retry_budget_factor = 4;   // retry runs with 12 iterations - plenty
  opt.max_retries = 1;
  opt.retry_backoff_ms = 1;
  BatchRunner runner({chain}, opt);
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, JobState::kDone);
  EXPECT_EQ(report.jobs[0].attempts, 2);
  EXPECT_TRUE(report.jobs[0].converged);
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(BatchRunnerTest, TransientFailureExhaustsRetryBudget) {
  TempDir dir("batch_retry_exhausted");
  const auto chain = dir.write("chain.hemcpa", chain_config());
  BatchOptions opt;
  opt.max_iterations = 1;
  opt.retry_budget_factor = 1;  // retries get no extra budget: still transient
  opt.max_retries = 2;
  opt.retry_backoff_ms = 1;
  BatchRunner runner({chain}, opt);
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, JobState::kFailed);
  EXPECT_TRUE(report.jobs[0].transient);
  EXPECT_EQ(report.jobs[0].attempts, 3);  // 1 + max_retries
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(report.exit_code(), 5);
}

TEST(BatchRunnerTest, RetryBudgetFactorScalesEveryAttempt) {
  // With factor 2 the iteration budgets run 3, 6, 12: the chain needs ~8
  // global iterations, so attempt 1 and 2 stay transient and attempt 3
  // converges.  A broken scaler (constant budget) would exhaust retries.
  TempDir dir("batch_retry_scaling");
  const auto chain = dir.write("chain.hemcpa", chain_config());
  BatchOptions opt;
  opt.max_iterations = 3;
  opt.retry_budget_factor = 2;
  opt.max_retries = 2;
  opt.retry_backoff_ms = 1;
  BatchRunner runner({chain}, opt);
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, JobState::kDone);
  EXPECT_EQ(report.jobs[0].attempts, 3);
  EXPECT_TRUE(report.jobs[0].converged);
  EXPECT_EQ(report.retries, 2);
}

TEST(BatchRunnerTest, CancelledJobIsNeverRetried) {
  // Watchdog cancellation is terminal: the job was told to stop, so retry
  // budget must not resurrect it even when retries remain.
  TempDir dir("batch_cancel_no_retry");
  const auto divergent = dir.write("divergent.hemcpa", kDivergentConfig);
  BatchOptions opt;
  opt.job_budget_ms = 300;
  opt.max_retries = 3;  // plenty of retry budget that must stay unused
  opt.retry_backoff_ms = 1;
  opt.fixpoint_max_iterations = 8000000000LL;
  opt.fixpoint_max_window = static_cast<Time>(8000000000000000000LL);
  BatchRunner runner({divergent}, opt);
  const BatchReport report = runner.run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, JobState::kCancelled);
  EXPECT_EQ(report.jobs[0].attempts, 1);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.exit_code(), 5);
}

TEST(BatchRunnerTest, ResumeSkipsJournaledJobs) {
  TempDir dir("batch_resume");
  const auto a = dir.write("a.hemcpa", kTinyConfig);
  const auto b = dir.write("b.hemcpa", kTinyConfig2);
  BatchOptions opt;
  opt.journal_path = dir.file("out.journal");
  BatchReport first = BatchRunner({a, b}, opt).run();
  ASSERT_EQ(first.exit_code(), 0);

  opt.resume = true;
  BatchReport second = BatchRunner({a, b}, opt).run();
  ASSERT_EQ(second.jobs.size(), 2u);
  EXPECT_TRUE(second.jobs[0].from_journal);
  EXPECT_TRUE(second.jobs[1].from_journal);
  EXPECT_EQ(second.jobs[0].attempts, first.jobs[0].attempts);
  EXPECT_EQ(second.journal_skips, 2);
  EXPECT_EQ(csv_of(second), csv_of(first));  // byte-identical merged report
}

TEST(BatchRunnerTest, ResumeRerunsEditedConfig) {
  TempDir dir("batch_resume_edited");
  const auto a = dir.write("a.hemcpa", kTinyConfig);
  BatchOptions opt;
  opt.journal_path = dir.file("out.journal");
  (void)BatchRunner({a}, opt).run();

  dir.write("a.hemcpa", kTinyConfig2);  // content changed => fingerprint changed
  opt.resume = true;
  const BatchReport second = BatchRunner({a}, opt).run();
  EXPECT_FALSE(second.jobs[0].from_journal);
  EXPECT_EQ(second.journal_skips, 0);
  EXPECT_EQ(second.jobs[0].state, JobState::kDone);
}

TEST(BatchRunnerTest, ShutdownFlagLeavesJobsQueuedWithExitSix) {
  TempDir dir("batch_shutdown_flag");
  const auto a = dir.write("a.hemcpa", kTinyConfig);
  const auto b = dir.write("b.hemcpa", kTinyConfig2);
  static volatile std::sig_atomic_t flag = 1;  // already requested before run()
  BatchRunner runner({a, b}, BatchOptions{});
  const BatchReport report = runner.run(&flag);
  EXPECT_TRUE(report.interrupted);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kQueued);
  EXPECT_EQ(report.jobs[1].state, JobState::kQueued);
  EXPECT_EQ(report.jobs[0].attempts, 0);
  EXPECT_EQ(report.exit_code(), 6);
}

TEST(BatchRunnerTest, ResultsAreIdenticalForAnyPoolWidth) {
  TempDir dir("batch_pool_width");
  std::vector<std::string> configs;
  configs.push_back(dir.write("a.hemcpa", kTinyConfig));
  configs.push_back(dir.write("b.hemcpa", kTinyConfig2));
  configs.push_back(dir.write("c.hemcpa", chain_config()));
  configs.push_back(dir.write("d.hemcpa", "garbage\n"));

  BatchOptions narrow;
  narrow.parallel_jobs = 1;
  BatchOptions wide;
  wide.parallel_jobs = 4;
  const BatchReport r1 = BatchRunner(configs, narrow).run();
  const BatchReport r4 = BatchRunner(configs, wide).run();
  EXPECT_EQ(csv_of(r1), csv_of(r4));
  EXPECT_EQ(r1.exit_code(), r4.exit_code());
}

TEST(BatchRunnerTest, CsvPlaceholderRowForNonDoneJobs) {
  BatchReport report;
  JobResult done;
  done.path = "ok.hemcpa";
  done.state = JobState::kDone;
  done.rows.push_back("ok.hemcpa,T,R,1,2,3,4,0.5,converged");
  JobResult failed;
  failed.path = "bad, name.hemcpa";  // comma forces CSV quoting
  failed.state = JobState::kFailed;
  report.jobs.push_back(done);
  report.jobs.push_back(failed);
  const std::string csv = csv_of(report);
  EXPECT_NE(csv.find("ok.hemcpa,T,R,1,2,3,4,0.5,converged\n"), std::string::npos);
  EXPECT_NE(csv.find("\"bad, name.hemcpa\",-,-,-,-,-,-,-,failed\n"), std::string::npos);
}

TEST(BatchRunnerTest, ExitCodePrecedence) {
  BatchReport report;
  JobResult job;
  job.state = JobState::kDone;
  report.jobs.push_back(job);
  EXPECT_EQ(report.exit_code(), 0);
  report.jobs[0].degraded = true;
  EXPECT_EQ(report.exit_code(), 4);
  JobResult failed;
  failed.state = JobState::kFailed;
  report.jobs.push_back(failed);
  EXPECT_EQ(report.exit_code(), 5);  // 5 beats 4
  report.interrupted = true;
  EXPECT_EQ(report.exit_code(), 6);  // 6 beats 5
}

TEST(BatchRunnerTest, RunIsSingleShot) {
  TempDir dir("batch_single_shot");
  const auto a = dir.write("a.hemcpa", kTinyConfig);
  BatchRunner runner({a}, BatchOptions{});
  (void)runner.run();
  EXPECT_THROW((void)runner.run(), std::logic_error);
}

const char* kCrasherConfig =
    "option inject_fault=segv\n"
    "resource CPU1 spp\n"
    "source s1 periodic period=250\n"
    "task C resource=CPU1 priority=1 cet=24\n"
    "activate C from=s1\n";

TEST(BatchRunnerTest, WorkerCrashEarnsOneRespawnThenPoisonsTheConfig) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  TempDir dir("batch_poison");
  const auto crasher = dir.write("crash.hemcpa", kCrasherConfig);
  const auto good = dir.write("ok.hemcpa", kTinyConfig);
  BatchOptions opt;
  opt.journal_path = dir.file("out.journal");
  opt.crash_backoff_ms = 1;
  const BatchReport report = BatchRunner({crasher, good}, opt).run();

  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kPoisoned);
  EXPECT_EQ(report.jobs[0].attempts, 2);  // crash -> respawn -> crash again
  EXPECT_NE(report.jobs[0].message.find("poisoned"), std::string::npos)
      << report.jobs[0].message;
  // Natively the crash detail names the fatal signal; under ASan the
  // intercepted segfault becomes a nonzero exit status instead.
  EXPECT_TRUE(report.jobs[0].message.find("signal") != std::string::npos ||
              report.jobs[0].message.find("status") != std::string::npos)
      << report.jobs[0].message;
  EXPECT_EQ(report.crash_respawns, 1);
  EXPECT_EQ(report.poisoned, 1);
  // The crash never took the batch down: the clean config completed.
  EXPECT_EQ(report.jobs[1].state, JobState::kDone);
  EXPECT_EQ(report.exit_code(), 5);

  // The quarantine is durable: the journal carries a `poisoned` record.
  Journal journal(opt.journal_path);
  ASSERT_TRUE(journal.load());
  bool found = false;
  for (const JournalEntry& e : journal.entries()) {
    if (e.config_path != crasher) continue;
    found = true;
    EXPECT_EQ(e.status, "poisoned");
    EXPECT_EQ(e.attempts, 2);
  }
  EXPECT_TRUE(found);
}

TEST(BatchRunnerTest, ResumeSkipsPoisonedConfigsWithoutReExecuting) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  TempDir dir("batch_poison_resume");
  const auto crasher = dir.write("crash.hemcpa", kCrasherConfig);
  const auto good = dir.write("ok.hemcpa", kTinyConfig);
  BatchOptions opt;
  opt.journal_path = dir.file("out.journal");
  opt.crash_backoff_ms = 1;
  const BatchReport first = BatchRunner({crasher, good}, opt).run();
  ASSERT_EQ(first.exit_code(), 5);

  opt.resume = true;
  const BatchReport second = BatchRunner({crasher, good}, opt).run();
  ASSERT_EQ(second.jobs.size(), 2u);
  EXPECT_TRUE(second.jobs[0].from_journal);
  EXPECT_EQ(second.jobs[0].state, JobState::kPoisoned);
  EXPECT_EQ(second.crash_respawns, 0);  // nothing was re-executed
  EXPECT_EQ(second.poisoned, 0);        // restored, not newly quarantined
  EXPECT_EQ(second.journal_skips, 2);
  EXPECT_EQ(second.exit_code(), 5);
  EXPECT_EQ(csv_of(second), csv_of(first));  // placeholder row is stable
}

TEST(BatchRunnerTest, AbortFaultIsClassifiedNotFatal) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  TempDir dir("batch_abort_fault");
  const auto aborter = dir.write(
      "abort.hemcpa",
      "option inject_fault=abort\n"
      "resource CPU1 spp\n"
      "source s1 periodic period=250\n"
      "task C resource=CPU1 priority=1 cet=24\n"
      "activate C from=s1\n");
  BatchOptions opt;
  opt.crash_backoff_ms = 1;
  const BatchReport report = BatchRunner({aborter}, opt).run();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].state, JobState::kPoisoned);
  EXPECT_EQ(report.exit_code(), 5);
}

TEST(BatchRunnerTest, NoIsolateStillCompletesCleanConfigs) {
  TempDir dir("batch_no_isolate");
  const auto a = dir.write("a.hemcpa", kTinyConfig);
  const auto b = dir.write("b.hemcpa", kTinyConfig2);
  BatchOptions opt;
  opt.isolate = false;
  const BatchReport report = BatchRunner({a, b}, opt).run();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].state, JobState::kDone);
  EXPECT_EQ(report.jobs[1].state, JobState::kDone);
  EXPECT_EQ(report.crash_respawns, 0);
  EXPECT_EQ(report.exit_code(), 0);
}

TEST(BatchRunnerTest, CollectConfigsFromDirectorySorted) {
  TempDir dir("batch_collect_dir");
  dir.write("b.hemcpa", kTinyConfig);
  dir.write("a.hemcpa", kTinyConfig);
  dir.write("notes.txt", "ignored\n");
  const auto configs = BatchRunner::collect_configs(dir.path().string());
  ASSERT_EQ(configs.size(), 2u);
  EXPECT_EQ(fs::path(configs[0]).filename(), "a.hemcpa");
  EXPECT_EQ(fs::path(configs[1]).filename(), "b.hemcpa");
}

TEST(BatchRunnerTest, CollectConfigsFromManifest) {
  TempDir dir("batch_collect_manifest");
  dir.write("a.hemcpa", kTinyConfig);
  dir.write("b.hemcpa", kTinyConfig2);
  // CRLF line endings and a comment, like a Windows-edited manifest.
  const auto manifest =
      dir.write("jobs.txt", "# fleet manifest\r\na.hemcpa\r\n\r\nb.hemcpa\r\n");
  const auto configs = BatchRunner::collect_configs(manifest);
  ASSERT_EQ(configs.size(), 2u);
  // Relative entries resolve against the manifest's directory.
  EXPECT_EQ(configs[0], dir.file("a.hemcpa"));
  EXPECT_EQ(configs[1], dir.file("b.hemcpa"));
}

TEST(BatchRunnerTest, CollectConfigsRejectsBadOperands) {
  TempDir dir("batch_collect_bad");
  EXPECT_THROW((void)BatchRunner::collect_configs(dir.file("nope")), std::invalid_argument);
  EXPECT_THROW((void)BatchRunner::collect_configs(dir.path().string()),  // empty dir
               std::invalid_argument);
}

TEST(BatchRunnerTest, MissingOperandErrorNamesThePathAndExpectation) {
  // `hemcpa --batch nope` exits 3 with this message: it must say what was
  // expected, not just that an open failed.
  TempDir dir("batch_collect_missing_msg");
  try {
    (void)BatchRunner::collect_configs(dir.file("nope"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(dir.file("nope")), std::string::npos) << msg;
    EXPECT_NE(msg.find("does not exist"), std::string::npos) << msg;
    EXPECT_NE(msg.find("manifest"), std::string::npos) << msg;
  }
}

TEST(BatchRunnerTest, UnreadableManifestErrorMentionsPermissions) {
  TempDir dir("batch_collect_unreadable_msg");
  const auto manifest = dir.write("jobs.txt", "a.hemcpa\n");
  if (::geteuid() == 0) GTEST_SKIP() << "root ignores file permission bits";
  fs::permissions(manifest, fs::perms::none);
  try {
    (void)BatchRunner::collect_configs(manifest);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(manifest), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot be opened"), std::string::npos) << msg;
    EXPECT_NE(msg.find("permissions"), std::string::npos) << msg;
  }
  fs::permissions(manifest, fs::perms::owner_all);
}

}  // namespace
}  // namespace hem::exec
