#include "exec/job_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace hem::exec {
namespace {

using namespace std::chrono_literals;

/// Reap handles until `n` terminal jobs are collected or ~5s pass.
std::vector<JobPool::Handle> reap(JobPool& pool, std::size_t n) {
  std::vector<JobPool::Handle> out;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (out.size() < n && std::chrono::steady_clock::now() < deadline) {
    for (auto& h : pool.wait_terminal(50ms)) out.push_back(std::move(h));
  }
  return out;
}

TEST(JobPoolTest, RunsJobsAndReturnsContext) {
  JobPool pool(2, 1000);
  auto a = std::make_shared<int>(0);
  auto b = std::make_shared<int>(0);
  pool.start("a", 0, a, [a](const CancelToken&) { *a = 1; });
  pool.start("b", 0, b, [b](const CancelToken&) { *b = 2; });
  const auto done = reap(pool, 2);
  ASSERT_EQ(done.size(), 2u);
  for (const auto& h : done) EXPECT_EQ(h->phase, JobPool::Slot::kFinished);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(pool.running(), 0u);
  EXPECT_TRUE(pool.available());
}

TEST(JobPoolTest, WatchdogSoftCancelsOverBudgetJob) {
  std::vector<std::string> log;
  JobPool pool(1, 10'000, [&](const std::string& line) { log.push_back(line); });
  std::atomic<bool> saw_cancel{false};
  pool.start("slow", 50, nullptr, [&](const CancelToken& token) {
    while (!token.cancelled()) std::this_thread::sleep_for(1ms);
    saw_cancel = token.reason() == CancelReason::kWatchdog;
  });
  const auto done = reap(pool, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->phase, JobPool::Slot::kFinished);  // cancel honoured in time
  EXPECT_TRUE(saw_cancel.load());
  EXPECT_EQ(pool.watchdog_cancels(), 1);
  EXPECT_EQ(pool.abandoned(), 0);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log[0].rfind("watchdog: soft-cancelled slow", 0), 0u) << log[0];
}

TEST(JobPoolTest, UnresponsiveJobIsAbandonedAfterGrace) {
  JobPool pool(1, 50);  // short grace: abandon fast
  // Shared with the (soon-detached) worker: stack captures would dangle.
  auto release = std::make_shared<std::atomic<bool>>(false);
  pool.start("stuck", 20, nullptr, [release](const CancelToken&) {
    // Ignores its token entirely, like a fixpoint that never polls.
    while (!release->load()) std::this_thread::sleep_for(1ms);
  });
  const auto done = reap(pool, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->phase, JobPool::Slot::kAbandoned);
  EXPECT_EQ(pool.abandoned(), 1);
  EXPECT_TRUE(pool.available());  // the slot is free again despite the zombie
  release->store(true);           // let the detached worker exit cleanly
}

TEST(JobPoolTest, CancelWithoutEscalationWaitsForever) {
  JobPool pool(1, 30);  // grace is short, but non-escalating cancel ignores it
  std::atomic<bool> polled{false};
  auto ctx = std::make_shared<int>(0);
  auto handle = pool.start("drain", 0, ctx, [&, ctx](const CancelToken& token) {
    while (!token.cancelled()) std::this_thread::sleep_for(1ms);
    std::this_thread::sleep_for(100ms);  // well past grace_ms
    *ctx = 7;
    polled = true;
  });
  pool.cancel(handle, CancelReason::kShutdown, /*escalate=*/false);
  const auto done = reap(pool, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->phase, JobPool::Slot::kFinished);  // never abandoned
  EXPECT_TRUE(polled.load());
  EXPECT_EQ(*ctx, 7);
  EXPECT_EQ(pool.abandoned(), 0);
  EXPECT_EQ(done[0]->token.reason(), CancelReason::kShutdown);
}

TEST(JobPoolTest, EscalatingCancelAbandonsUnresponsiveJob) {
  JobPool pool(1, 40);
  auto release = std::make_shared<std::atomic<bool>>(false);
  auto handle = pool.start("deaf", 0, nullptr, [release](const CancelToken&) {
    while (!release->load()) std::this_thread::sleep_for(1ms);
  });
  pool.cancel(handle, CancelReason::kDisconnect, /*escalate=*/true);
  const auto done = reap(pool, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0]->phase, JobPool::Slot::kAbandoned);
  EXPECT_EQ(done[0]->token.reason(), CancelReason::kDisconnect);
  release->store(true);
}

TEST(JobPoolTest, CancelAllStopsEveryRunningJob) {
  JobPool pool(3, 1000);
  std::atomic<int> cancelled{0};
  for (int i = 0; i < 3; ++i) {
    pool.start("j" + std::to_string(i), 0, nullptr, [&](const CancelToken& token) {
      while (!token.cancelled()) std::this_thread::sleep_for(1ms);
      cancelled.fetch_add(1);
    });
  }
  pool.cancel_all(CancelReason::kShutdown, /*escalate=*/false);
  const auto done = reap(pool, 3);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(cancelled.load(), 3);
}

TEST(JobPoolTest, DestructorSurvivesUnresponsiveJobs) {
  auto release = std::make_shared<std::atomic<bool>>(false);
  {
    JobPool pool(1, 30);
    pool.start("zombie", 0, nullptr, [release](const CancelToken&) {
      while (!release->load()) std::this_thread::sleep_for(1ms);
    });
    // Destructor must cancel, wait out the grace period, detach, and return
    // instead of blocking on the deaf worker.
  }
  release->store(true);
}

}  // namespace
}  // namespace hem::exec
