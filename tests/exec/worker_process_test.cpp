// Tests for the out-of-process analysis sandbox (exec/worker_process.hpp):
// frame encode/decode round-trips and torn-frame rejection, crash and
// resource-limit classification of real forked children, kill() semantics,
// and the budget -> rlimit mapping.  The fork-based cases are guarded on
// WorkerProcess::supported() so the file still compiles (and trivially
// passes) on hosts without POSIX process isolation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/worker_process.hpp"

namespace hem::exec {
namespace {

AttemptOutcome sample_outcome() {
  AttemptOutcome out;
  out.ok = true;
  out.degraded = true;
  out.converged = true;
  out.cancelled = false;
  out.transient = false;
  out.cancel_reason = CancelReason::kNone;
  out.duration_ms = 4321;
  out.warm_seeded = 7;
  out.message = "all good, with = signs and\nnewlines";
  out.rows = {"cfg,task,42", "cfg,other,17", ""};
  return out;
}

TEST(WorkerFrameTest, EncodeDecodeRoundTripsEveryPipeSafeField) {
  const AttemptOutcome in = sample_outcome();
  AttemptOutcome out;
  ASSERT_TRUE(decode_outcome(encode_outcome(in), out));
  EXPECT_EQ(out.ok, in.ok);
  EXPECT_EQ(out.degraded, in.degraded);
  EXPECT_EQ(out.converged, in.converged);
  EXPECT_EQ(out.cancelled, in.cancelled);
  EXPECT_EQ(out.transient, in.transient);
  EXPECT_EQ(out.cancel_reason, in.cancel_reason);
  EXPECT_EQ(out.duration_ms, in.duration_ms);
  EXPECT_EQ(out.warm_seeded, in.warm_seeded);
  EXPECT_EQ(out.message, in.message);
  EXPECT_EQ(out.rows, in.rows);
  EXPECT_EQ(out.report, nullptr);
  EXPECT_EQ(out.snapshot, nullptr);
}

TEST(WorkerFrameTest, CancelledOutcomeKeepsItsReason) {
  AttemptOutcome in;
  in.cancelled = true;
  in.cancel_reason = CancelReason::kWatchdog;
  in.message = "budget exhausted";
  AttemptOutcome out;
  ASSERT_TRUE(decode_outcome(encode_outcome(in), out));
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.cancel_reason, CancelReason::kWatchdog);
}

TEST(WorkerFrameTest, DecodeRejectsTornAndForeignFrames) {
  const std::string good = encode_outcome(sample_outcome());
  AttemptOutcome out;
  // Every proper prefix is torn: no truncation length may decode.
  for (std::size_t cut = 0; cut < good.size(); ++cut)
    EXPECT_FALSE(decode_outcome(good.substr(0, cut), out)) << "cut at " << cut;
  // Trailing garbage and a foreign magic must be rejected too.
  EXPECT_FALSE(decode_outcome(good + "x", out));
  std::string foreign = good;
  foreign[0] = 'X';
  EXPECT_FALSE(decode_outcome(foreign, out));
  EXPECT_FALSE(decode_outcome("", out));
  // A failed decode must not clobber the caller's outcome.
  out = sample_outcome();
  EXPECT_FALSE(decode_outcome(good.substr(0, good.size() / 2), out));
  EXPECT_EQ(out.message, sample_outcome().message);
}

TEST(WorkerLimitsTest, BudgetMapsToGenerousCpuSecondsAndByteCaps) {
  const WorkerLimits none = limits_from_budget(0, 0, 0);
  EXPECT_EQ(none.cpu_seconds, 0);
  EXPECT_EQ(none.memory_bytes, 0);
  EXPECT_EQ(none.stack_bytes, 0);

  // Sub-second budgets round up to one wall second -> 4*1+2 CPU seconds.
  EXPECT_EQ(limits_from_budget(1, 0).cpu_seconds, 6);
  EXPECT_EQ(limits_from_budget(1000, 0).cpu_seconds, 6);
  EXPECT_EQ(limits_from_budget(2500, 0).cpu_seconds, 14);

  const WorkerLimits caps = limits_from_budget(0, 512, 8);
  EXPECT_EQ(caps.memory_bytes, 512LL << 20);
  EXPECT_EQ(caps.stack_bytes, 8LL << 20);
}

TEST(WorkerProcessTest, CleanChildShipsItsOutcomeBack) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  const WorkerReport report =
      worker.run([] { return sample_outcome(); }, WorkerLimits{}, nullptr);
  ASSERT_EQ(report.kind, WorkerExit::kResult);
  EXPECT_TRUE(report.outcome.ok);
  EXPECT_EQ(report.outcome.warm_seeded, 7);
  EXPECT_EQ(report.outcome.rows, sample_outcome().rows);
}

TEST(WorkerProcessTest, SegfaultBecomesCrashedWithTheSignal) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        ::raise(SIGSEGV);
        return {};
      },
      WorkerLimits{}, nullptr);
  EXPECT_EQ(report.kind, WorkerExit::kCrashed);
  // Natively the child dies on SIGSEGV; under AddressSanitizer the signal
  // is intercepted and the child exits nonzero instead.  Both are crashes.
  EXPECT_TRUE(report.term_signal == SIGSEGV || report.exit_status != 0)
      << report.detail;
  EXPECT_FALSE(report.outcome.ok);
}

TEST(WorkerProcessTest, AbortBecomesCrashedNotParentDeath) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        std::abort();
      },
      WorkerLimits{}, nullptr);
  EXPECT_EQ(report.kind, WorkerExit::kCrashed);
  EXPECT_EQ(report.term_signal, SIGABRT);
}

TEST(WorkerProcessTest, NonZeroExitIsCrashedWithTheStatus) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        std::_Exit(9);
      },
      WorkerLimits{}, nullptr);
  EXPECT_EQ(report.kind, WorkerExit::kCrashed);
  EXPECT_EQ(report.exit_status, 9);
}

TEST(WorkerProcessTest, CpuLimitTurnsASpinLoopIntoResourceExhausted) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  WorkerLimits limits;
  limits.cpu_seconds = 1;
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        volatile std::uint64_t x = 1;
        for (;;) x = x * 2654435761u + 1;
      },
      limits, nullptr);
  EXPECT_EQ(report.kind, WorkerExit::kResourceExhausted) << report.detail;
}

TEST(WorkerProcessTest, KillFromAnotherThreadYieldsKilledCancelledOutcome) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  std::thread killer([&worker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    worker.kill();
  });
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return {};
      },
      WorkerLimits{}, nullptr);
  killer.join();
  EXPECT_EQ(report.kind, WorkerExit::kKilled);
  EXPECT_TRUE(report.outcome.cancelled);
}

TEST(WorkerProcessTest, KillBeforeRunKillsTheChildOnArrival) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  worker.kill();  // pre-fork: marks the next child as doomed
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return {};
      },
      WorkerLimits{}, nullptr);
  EXPECT_EQ(report.kind, WorkerExit::kKilled);
  worker.kill();  // post-reap: must stay a no-op
}

TEST(WorkerProcessTest, FiredCancelTokenKillsTheChild) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  CancelToken token;
  WorkerProcess worker;
  std::thread firer([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    token.cancel(CancelReason::kWatchdog);
  });
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return {};
      },
      WorkerLimits{}, &token);
  firer.join();
  EXPECT_EQ(report.kind, WorkerExit::kKilled);
  EXPECT_TRUE(report.outcome.cancelled);
  EXPECT_EQ(report.outcome.cancel_reason, CancelReason::kWatchdog);
}

TEST(WorkerProcessTest, LivePidsTracksTheRunningChild) {
  if (!WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  WorkerProcess worker;
  std::atomic<bool> saw_child{false};
  std::thread watcher([&] {
    for (int i = 0; i < 200 && !saw_child.load(); ++i) {
      if (!WorkerProcess::live_pids().empty()) saw_child.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Whether or not we spotted it, put the child out of its misery.
    worker.kill();
  });
  const WorkerReport report = worker.run(
      []() -> AttemptOutcome {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return {};
      },
      WorkerLimits{}, nullptr);
  watcher.join();
  EXPECT_TRUE(saw_child.load());
  EXPECT_EQ(report.kind, WorkerExit::kKilled);
  // Once reaped, the pid must be gone from the registry.
  const std::vector<int> after = WorkerProcess::live_pids();
  EXPECT_TRUE(after.empty());
}

TEST(WorkerProcessTest, ExitKindsHaveStableNames) {
  EXPECT_STREQ(to_string(WorkerExit::kResult), "result");
  EXPECT_STREQ(to_string(WorkerExit::kCrashed), "crashed");
  EXPECT_STREQ(to_string(WorkerExit::kResourceExhausted), "resource-exhausted");
  EXPECT_STREQ(to_string(WorkerExit::kKilled), "killed");
  EXPECT_STREQ(to_string(WorkerExit::kSpawnFailed), "spawn-failed");
}

}  // namespace
}  // namespace hem::exec
