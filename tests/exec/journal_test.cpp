#include "exec/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hem::exec {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  void write(const std::string& text) const {
    std::ofstream out(path_, std::ios::binary);
    out << text;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JournalEntry entry(const std::string& path, std::uint64_t fp, const std::string& status) {
  JournalEntry e;
  e.config_path = path;
  e.fingerprint = fp;
  e.status = status;
  e.attempts = 2;
  e.duration_ms = 17;
  e.degraded = (status == "done");
  if (status == "done") {
    e.rows.push_back(path + ",T1,CPU,1,2,3,4,0.5,converged");
    e.rows.push_back(path + ",T2,CPU,2,4,3,4,0.5,converged");
  }
  return e;
}

TEST(JournalTest, FingerprintIsDeterministicAndContentSensitive) {
  const std::string a = "resource R spp\n";
  const std::string b = "resource R spp \n";  // one extra byte
  EXPECT_EQ(fingerprint_bytes(a.data(), a.size()), fingerprint_bytes(a.data(), a.size()));
  EXPECT_NE(fingerprint_bytes(a.data(), a.size()), fingerprint_bytes(b.data(), b.size()));
  EXPECT_NE(fingerprint_bytes(a.data(), a.size()), fingerprint_bytes(a.data(), a.size() - 1));
}

TEST(JournalTest, FingerprintFileMatchesBytesAndRejectsMissing) {
  TempFile f("journal_fp_config.hemcpa");
  const std::string text = "resource R spp\r\nsource s periodic period=5\r\n";
  f.write(text);
  EXPECT_EQ(fingerprint_file(f.path()), fingerprint_bytes(text.data(), text.size()));
  EXPECT_THROW((void)fingerprint_file(f.path() + ".missing"), std::runtime_error);
}

TEST(JournalTest, FingerprintHexIsFixedWidthLowercase) {
  EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(fingerprint_hex(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
}

TEST(JournalTest, RenderParseRoundTrip) {
  std::vector<JournalEntry> in;
  in.push_back(entry("a.hemcpa", 0x1111, "done"));
  in.push_back(entry("dir with spaces/b v=2.hemcpa", 0x2222, "cancelled"));
  in.push_back(entry("c.hemcpa", 0x3333, "failed"));

  TempFile f("journal_roundtrip.journal");
  Journal real(f.path());
  for (const auto& e : in) real.add(e);
  const std::string text = real.render();

  const auto out = Journal::parse(text);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].config_path, in[i].config_path);
    EXPECT_EQ(out[i].fingerprint, in[i].fingerprint);
    EXPECT_EQ(out[i].status, in[i].status);
    EXPECT_EQ(out[i].attempts, in[i].attempts);
    EXPECT_EQ(out[i].duration_ms, in[i].duration_ms);
    EXPECT_EQ(out[i].degraded, in[i].degraded);
    EXPECT_EQ(out[i].rows, in[i].rows);
  }
}

TEST(JournalTest, PathMayContainSpacesAndEquals) {
  TempFile f("journal_pathy.journal");
  Journal j(f.path());
  j.add(entry("configs/run=3 final copy.hemcpa", 0xABC, "done"));
  const auto out = Journal::parse(j.render());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].config_path, "configs/run=3 final copy.hemcpa");
}

TEST(JournalTest, LoadReturnsFalseWhenAbsent) {
  Journal j(std::string(::testing::TempDir()) + "definitely_missing_journal_file.journal");
  EXPECT_FALSE(j.load());
  EXPECT_TRUE(j.entries().empty());
}

TEST(JournalTest, AddPersistsAndLoadRestores) {
  TempFile f("journal_persist.journal");
  {
    Journal j(f.path());
    j.add(entry("a.hemcpa", 0x1, "done"));
    j.add(entry("b.hemcpa", 0x2, "failed"));
  }
  Journal j2(f.path());
  ASSERT_TRUE(j2.load());
  ASSERT_EQ(j2.entries().size(), 2u);
  EXPECT_EQ(j2.entries()[0].config_path, "a.hemcpa");
  EXPECT_EQ(j2.entries()[1].status, "failed");
}

TEST(JournalTest, ClearEmptiesDiskAndMemory) {
  TempFile f("journal_clear.journal");
  Journal j(f.path());
  j.add(entry("a.hemcpa", 0x1, "done"));
  j.clear();
  EXPECT_TRUE(j.entries().empty());
  Journal j2(f.path());
  ASSERT_TRUE(j2.load());  // file exists (clear persists an empty journal)
  EXPECT_TRUE(j2.entries().empty());
}

TEST(JournalTest, FindMatchesPathAndFingerprint) {
  TempFile f("journal_find.journal");
  Journal j(f.path());
  j.add(entry("a.hemcpa", 0x10, "done"));
  ASSERT_NE(j.find("a.hemcpa", 0x10), nullptr);
  EXPECT_TRUE(j.find("a.hemcpa", 0x10)->completed());
  EXPECT_EQ(j.find("a.hemcpa", 0x11), nullptr);  // edited config re-runs
  EXPECT_EQ(j.find("b.hemcpa", 0x10), nullptr);
}

TEST(JournalTest, CompletedOnlyForDone) {
  EXPECT_TRUE(entry("a", 1, "done").completed());
  EXPECT_FALSE(entry("a", 1, "failed").completed());
  EXPECT_FALSE(entry("a", 1, "cancelled").completed());
  EXPECT_FALSE(entry("a", 1, "abandoned").completed());
}

TEST(JournalTest, ParseRejectsCorruptInput) {
  // Wrong header.
  EXPECT_THROW((void)Journal::parse("not-a-journal v1\nend\n"), std::runtime_error);
  // Missing the `end` completeness trailer (torn write).
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\n"), std::runtime_error);
  // Unknown status.
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\n"
                                    "job fp=0000000000000001 status=exploded attempts=1 "
                                    "duration_ms=1 degraded=0 rows=0 path=a\n"
                                    "end\n"),
               std::runtime_error);
  // Fewer row lines than announced.
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\n"
                                    "job fp=0000000000000001 status=done attempts=1 "
                                    "duration_ms=1 degraded=0 rows=2 path=a\n"
                                    "row a,T,R,1,1,1,1,0.1,converged\n"
                                    "end\n"),
               std::runtime_error);
  // Garbage between records.
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\nwat\nend\n"), std::runtime_error);
}

TEST(JournalTest, ParseAcceptsCrashedAndPoisonedStatuses) {
  const auto out = Journal::parse(
      "hemcpa-journal v1\n"
      "job fp=0000000000000001 status=crashed attempts=1 duration_ms=1 "
      "degraded=0 rows=0 path=a\n"
      "job fp=0000000000000002 status=poisoned attempts=2 duration_ms=1 "
      "degraded=0 rows=0 path=b\n"
      "end\n");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].status, "crashed");
  EXPECT_EQ(out[1].status, "poisoned");
  EXPECT_FALSE(out[0].completed());
  EXPECT_FALSE(out[1].completed());
}

TEST(JournalTest, LoadRecoversTornTail) {
  TempFile f("journal_torn.journal");
  const std::string complete =
      "hemcpa-journal v1\n"
      "job fp=0000000000000001 status=done attempts=1 duration_ms=1 "
      "degraded=0 rows=1 path=a.hemcpa\n"
      "row a.hemcpa,T,R,1,1,1,1,0.1,converged\n";
  const std::string torn_tail =
      "job fp=0000000000000002 status=do";  // killed mid-record, no `end`
  f.write(complete + torn_tail);
  Journal j(f.path());
  ASSERT_TRUE(j.load());
  ASSERT_EQ(j.entries().size(), 1u);
  EXPECT_EQ(j.entries()[0].config_path, "a.hemcpa");
  EXPECT_TRUE(j.last_recovery().torn);
  EXPECT_EQ(j.last_recovery().valid_bytes, complete.size());
  EXPECT_EQ(j.last_recovery().entries_kept, 1u);
  // The torn bytes are quarantined verbatim next to the journal...
  std::ifstream quarantined(j.last_recovery().quarantine_path, std::ios::binary);
  ASSERT_TRUE(quarantined.good());
  std::ostringstream qbuf;
  qbuf << quarantined.rdbuf();
  EXPECT_EQ(qbuf.str(), torn_tail);
  // ...and the journal itself is rewritten valid: a second load is clean.
  Journal j2(f.path());
  ASSERT_TRUE(j2.load());
  EXPECT_FALSE(j2.last_recovery().torn);
  ASSERT_EQ(j2.entries().size(), 1u);
  std::remove(j.last_recovery().quarantine_path.c_str());
}

TEST(JournalTest, TruncationAtEveryByteOffsetSalvagesExactlyThePrefix) {
  // A machine-written journal interrupted at ANY byte offset must split
  // cleanly: every complete record before the tear is replayed, nothing
  // after it leaks through, and the strict parser refuses the same text.
  std::vector<JournalEntry> in;
  in.push_back(entry("a.hemcpa", 0x1, "done"));
  in.push_back(entry("b dir/with=weird path.hemcpa", 0x2, "crashed"));
  in.push_back(entry("c.hemcpa", 0x3, "poisoned"));
  TempFile f("journal_offsets.journal");
  Journal whole(f.path());
  for (const auto& e : in) whole.add(e);
  const std::string text = whole.render();

  // Byte offsets where each record becomes complete (end of its last line).
  std::vector<std::size_t> record_ends;
  {
    Journal::Recovery r;
    for (std::size_t cut = 0; cut < text.size(); ++cut) {
      const auto got = Journal::parse_tolerant(text.substr(0, cut), r);
      if (record_ends.size() < got.size()) record_ends.push_back(r.valid_bytes);
    }
  }
  ASSERT_EQ(record_ends.size(), in.size());

  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    const std::string torn = text.substr(0, cut);
    Journal::Recovery r;
    std::vector<JournalEntry> got;
    ASSERT_NO_THROW(got = Journal::parse_tolerant(torn, r)) << "offset " << cut;
    ASSERT_TRUE(r.torn) << "offset " << cut;
    // Exactly the records whose bytes are fully inside the prefix survive.
    std::size_t expect = 0;
    while (expect < record_ends.size() && record_ends[expect] <= cut) ++expect;
    ASSERT_EQ(got.size(), expect) << "offset " << cut;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].config_path, in[i].config_path) << "offset " << cut;
      EXPECT_EQ(got[i].fingerprint, in[i].fingerprint) << "offset " << cut;
      EXPECT_EQ(got[i].status, in[i].status) << "offset " << cut;
      EXPECT_EQ(got[i].rows, in[i].rows) << "offset " << cut;
    }
    EXPECT_LE(r.valid_bytes, cut) << "offset " << cut;
    // The strict parser must reject every torn prefix (the daemon relies on
    // this split to tell tears from foreign files).
    EXPECT_THROW((void)Journal::parse(torn), std::runtime_error) << "offset " << cut;
  }
  // The untruncated text parses strictly, as a sanity anchor.
  EXPECT_EQ(Journal::parse(text).size(), in.size());
}

TEST(JournalTest, LoadRecoversEveryTruncationOffsetOfARealFile) {
  std::vector<JournalEntry> in;
  in.push_back(entry("a.hemcpa", 0xA, "done"));
  in.push_back(entry("b.hemcpa", 0xB, "failed"));
  TempFile f("journal_load_offsets.journal");
  Journal whole(f.path());
  for (const auto& e : in) whole.add(e);
  const std::string text = whole.render();

  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    TempFile torn("journal_load_offsets_cut.journal");
    torn.write(text.substr(0, cut));
    Journal j(torn.path());
    ASSERT_TRUE(j.load()) << "offset " << cut;
    ASSERT_TRUE(j.last_recovery().torn) << "offset " << cut;
    // Quarantine holds exactly the bytes past the salvaged prefix.
    std::ifstream q(j.last_recovery().quarantine_path, std::ios::binary);
    ASSERT_TRUE(q.good()) << "offset " << cut;
    std::ostringstream qbuf;
    qbuf << q.rdbuf();
    EXPECT_EQ(qbuf.str(), text.substr(j.last_recovery().valid_bytes, cut - j.last_recovery().valid_bytes))
        << "offset " << cut;
    // The rewritten journal is whole again.
    Journal again(torn.path());
    ASSERT_TRUE(again.load()) << "offset " << cut;
    EXPECT_FALSE(again.last_recovery().torn) << "offset " << cut;
    EXPECT_EQ(again.entries().size(), j.entries().size()) << "offset " << cut;
    std::remove(j.last_recovery().quarantine_path.c_str());
  }
}

TEST(JournalTest, LoadStillThrowsOnForeignFile) {
  TempFile f("journal_foreign.journal");
  f.write("totally unrelated file contents\nnot a journal\n");
  Journal j(f.path());
  EXPECT_THROW((void)j.load(), std::runtime_error);
}

}  // namespace
}  // namespace hem::exec
