#include "exec/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace hem::exec {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + name) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  void write(const std::string& text) const {
    std::ofstream out(path_, std::ios::binary);
    out << text;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JournalEntry entry(const std::string& path, std::uint64_t fp, const std::string& status) {
  JournalEntry e;
  e.config_path = path;
  e.fingerprint = fp;
  e.status = status;
  e.attempts = 2;
  e.duration_ms = 17;
  e.degraded = (status == "done");
  if (status == "done") {
    e.rows.push_back(path + ",T1,CPU,1,2,3,4,0.5,converged");
    e.rows.push_back(path + ",T2,CPU,2,4,3,4,0.5,converged");
  }
  return e;
}

TEST(JournalTest, FingerprintIsDeterministicAndContentSensitive) {
  const std::string a = "resource R spp\n";
  const std::string b = "resource R spp \n";  // one extra byte
  EXPECT_EQ(fingerprint_bytes(a.data(), a.size()), fingerprint_bytes(a.data(), a.size()));
  EXPECT_NE(fingerprint_bytes(a.data(), a.size()), fingerprint_bytes(b.data(), b.size()));
  EXPECT_NE(fingerprint_bytes(a.data(), a.size()), fingerprint_bytes(a.data(), a.size() - 1));
}

TEST(JournalTest, FingerprintFileMatchesBytesAndRejectsMissing) {
  TempFile f("journal_fp_config.hemcpa");
  const std::string text = "resource R spp\r\nsource s periodic period=5\r\n";
  f.write(text);
  EXPECT_EQ(fingerprint_file(f.path()), fingerprint_bytes(text.data(), text.size()));
  EXPECT_THROW((void)fingerprint_file(f.path() + ".missing"), std::runtime_error);
}

TEST(JournalTest, FingerprintHexIsFixedWidthLowercase) {
  EXPECT_EQ(fingerprint_hex(0), "0000000000000000");
  EXPECT_EQ(fingerprint_hex(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
}

TEST(JournalTest, RenderParseRoundTrip) {
  std::vector<JournalEntry> in;
  in.push_back(entry("a.hemcpa", 0x1111, "done"));
  in.push_back(entry("dir with spaces/b v=2.hemcpa", 0x2222, "cancelled"));
  in.push_back(entry("c.hemcpa", 0x3333, "failed"));

  TempFile f("journal_roundtrip.journal");
  Journal real(f.path());
  for (const auto& e : in) real.add(e);
  const std::string text = real.render();

  const auto out = Journal::parse(text);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].config_path, in[i].config_path);
    EXPECT_EQ(out[i].fingerprint, in[i].fingerprint);
    EXPECT_EQ(out[i].status, in[i].status);
    EXPECT_EQ(out[i].attempts, in[i].attempts);
    EXPECT_EQ(out[i].duration_ms, in[i].duration_ms);
    EXPECT_EQ(out[i].degraded, in[i].degraded);
    EXPECT_EQ(out[i].rows, in[i].rows);
  }
}

TEST(JournalTest, PathMayContainSpacesAndEquals) {
  TempFile f("journal_pathy.journal");
  Journal j(f.path());
  j.add(entry("configs/run=3 final copy.hemcpa", 0xABC, "done"));
  const auto out = Journal::parse(j.render());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].config_path, "configs/run=3 final copy.hemcpa");
}

TEST(JournalTest, LoadReturnsFalseWhenAbsent) {
  Journal j(std::string(::testing::TempDir()) + "definitely_missing_journal_file.journal");
  EXPECT_FALSE(j.load());
  EXPECT_TRUE(j.entries().empty());
}

TEST(JournalTest, AddPersistsAndLoadRestores) {
  TempFile f("journal_persist.journal");
  {
    Journal j(f.path());
    j.add(entry("a.hemcpa", 0x1, "done"));
    j.add(entry("b.hemcpa", 0x2, "failed"));
  }
  Journal j2(f.path());
  ASSERT_TRUE(j2.load());
  ASSERT_EQ(j2.entries().size(), 2u);
  EXPECT_EQ(j2.entries()[0].config_path, "a.hemcpa");
  EXPECT_EQ(j2.entries()[1].status, "failed");
}

TEST(JournalTest, ClearEmptiesDiskAndMemory) {
  TempFile f("journal_clear.journal");
  Journal j(f.path());
  j.add(entry("a.hemcpa", 0x1, "done"));
  j.clear();
  EXPECT_TRUE(j.entries().empty());
  Journal j2(f.path());
  ASSERT_TRUE(j2.load());  // file exists (clear persists an empty journal)
  EXPECT_TRUE(j2.entries().empty());
}

TEST(JournalTest, FindMatchesPathAndFingerprint) {
  TempFile f("journal_find.journal");
  Journal j(f.path());
  j.add(entry("a.hemcpa", 0x10, "done"));
  ASSERT_NE(j.find("a.hemcpa", 0x10), nullptr);
  EXPECT_TRUE(j.find("a.hemcpa", 0x10)->completed());
  EXPECT_EQ(j.find("a.hemcpa", 0x11), nullptr);  // edited config re-runs
  EXPECT_EQ(j.find("b.hemcpa", 0x10), nullptr);
}

TEST(JournalTest, CompletedOnlyForDone) {
  EXPECT_TRUE(entry("a", 1, "done").completed());
  EXPECT_FALSE(entry("a", 1, "failed").completed());
  EXPECT_FALSE(entry("a", 1, "cancelled").completed());
  EXPECT_FALSE(entry("a", 1, "abandoned").completed());
}

TEST(JournalTest, ParseRejectsCorruptInput) {
  // Wrong header.
  EXPECT_THROW((void)Journal::parse("not-a-journal v1\nend\n"), std::runtime_error);
  // Missing the `end` completeness trailer (torn write).
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\n"), std::runtime_error);
  // Unknown status.
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\n"
                                    "job fp=0000000000000001 status=exploded attempts=1 "
                                    "duration_ms=1 degraded=0 rows=0 path=a\n"
                                    "end\n"),
               std::runtime_error);
  // Fewer row lines than announced.
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\n"
                                    "job fp=0000000000000001 status=done attempts=1 "
                                    "duration_ms=1 degraded=0 rows=2 path=a\n"
                                    "row a,T,R,1,1,1,1,0.1,converged\n"
                                    "end\n"),
               std::runtime_error);
  // Garbage between records.
  EXPECT_THROW((void)Journal::parse("hemcpa-journal v1\nwat\nend\n"), std::runtime_error);
}

TEST(JournalTest, LoadThrowsOnTornFile) {
  TempFile f("journal_torn.journal");
  f.write("hemcpa-journal v1\n"
          "job fp=0000000000000001 status=done attempts=1 duration_ms=1 "
          "degraded=0 rows=1 path=a.hemcpa\n"
          "row a.hemcpa,T,R,1,1,1,1,0.1,converged\n");  // no `end`
  Journal j(f.path());
  EXPECT_THROW((void)j.load(), std::runtime_error);
}

}  // namespace
}  // namespace hem::exec
