#include "exec/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hem::exec {
namespace {

TEST(CancelTokenTest, StartsUnfired) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
}

TEST(CancelTokenTest, CancelSetsFlagAndReason) {
  CancelToken token;
  token.cancel(CancelReason::kWatchdog);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kWatchdog);
}

TEST(CancelTokenTest, DoubleCancelKeepsFirstReason) {
  // Escalation paths fire the same token twice (watchdog soft-cancel, then
  // shutdown); attribution must stay with the original cause.
  CancelToken token;
  token.cancel(CancelReason::kWatchdog);
  token.cancel(CancelReason::kShutdown);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kWatchdog);

  token.cancel(CancelReason::kUser);
  EXPECT_EQ(token.reason(), CancelReason::kWatchdog);
}

TEST(CancelTokenTest, ResetReArmsForAFreshAttempt) {
  CancelToken token;
  token.cancel(CancelReason::kUser);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);

  // A later cancel is again a first cancel.
  token.cancel(CancelReason::kShutdown);
  EXPECT_EQ(token.reason(), CancelReason::kShutdown);
}

TEST(CancelTokenTest, ReasonNeverNoneOnceCancelObserved) {
  // Cross-thread ordering contract of reason(): any thread that observes
  // cancelled() == true must also observe a non-kNone reason.  Hammer the
  // window between the reason CAS and the cancelled store from a second
  // thread; a single kNone observation after cancelled() fails the test.
  constexpr int kRounds = 2000;
  for (int round = 0; round < kRounds; ++round) {
    CancelToken token;
    std::atomic<bool> go{false};
    std::atomic<bool> violated{false};

    std::thread observer([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      while (!token.cancelled()) {
      }
      if (token.reason() == CancelReason::kNone) violated.store(true);
    });

    go.store(true, std::memory_order_release);
    token.cancel(CancelReason::kDisconnect);
    observer.join();
    ASSERT_FALSE(violated.load()) << "observed cancelled with reason kNone in round " << round;
    EXPECT_EQ(token.reason(), CancelReason::kDisconnect);
  }
}

TEST(CancelTokenTest, ConcurrentCancelsAgreeOnOneReason) {
  // Many racing cancels: exactly one reason wins and every reader agrees.
  constexpr int kRounds = 500;
  const std::vector<CancelReason> reasons = {
      CancelReason::kUser, CancelReason::kWatchdog, CancelReason::kShutdown,
      CancelReason::kDisconnect};
  for (int round = 0; round < kRounds; ++round) {
    CancelToken token;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    threads.reserve(reasons.size());
    for (CancelReason r : reasons) {
      threads.emplace_back([&, r] {
        ready.fetch_add(1);
        while (ready.load() < static_cast<int>(reasons.size())) {
        }
        token.cancel(r);
      });
    }
    for (auto& t : threads) t.join();
    const CancelReason winner = token.reason();
    EXPECT_NE(winner, CancelReason::kNone);
    EXPECT_EQ(token.reason(), winner);  // stable across reads
  }
}

TEST(CancelTokenTest, ToStringCoversAllReasons) {
  EXPECT_STREQ(to_string(CancelReason::kNone), "none");
  EXPECT_STREQ(to_string(CancelReason::kUser), "user");
  EXPECT_STREQ(to_string(CancelReason::kWatchdog), "watchdog");
  EXPECT_STREQ(to_string(CancelReason::kShutdown), "shutdown");
  EXPECT_STREQ(to_string(CancelReason::kDisconnect), "disconnect");
}

}  // namespace
}  // namespace hem::exec
