#include "daemon/protocol.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#define HEM_TEST_POSIX 1
#else
#define HEM_TEST_POSIX 0
#endif

namespace hem::daemon {
namespace {

// ---- request line parsing -------------------------------------------------

TEST(ProtocolTest, ParsesVerbAndKeyValues) {
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request_line("hemcpad1 submit bytes=42 client=ci budget_ms=500", req, error))
      << error;
  EXPECT_EQ(req.verb, "submit");
  EXPECT_EQ(req.get("client"), "ci");
  EXPECT_EQ(req.get_long("bytes"), 42);
  EXPECT_EQ(req.get_long("budget_ms"), 500);
  EXPECT_EQ(req.get_long("absent", 7), 7);
  EXPECT_FALSE(req.has("absent"));
}

TEST(ProtocolTest, MalformedNumberReadsAsMinusOne) {
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request_line("hemcpad1 submit bytes=banana", req, error));
  EXPECT_EQ(req.get_long("bytes"), -1);  // callers reject the request
}

TEST(ProtocolTest, RejectsWrongVersionToken) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request_line("hemcpad2 ping", req, error));
  EXPECT_FALSE(parse_request_line("ping", req, error));
  EXPECT_FALSE(parse_request_line("", req, error));
  EXPECT_FALSE(error.empty());
}

TEST(ProtocolTest, RejectsMissingVerbAndBadTokens) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request_line("hemcpad1", req, error));
  EXPECT_FALSE(parse_request_line("hemcpad1 submit =value", req, error));
  EXPECT_FALSE(parse_request_line("hemcpad1 submit noequals", req, error));
}

TEST(ProtocolTest, RejectsControlCharacters) {
  Request req;
  std::string error;
  EXPECT_FALSE(parse_request_line("hemcpad1 submit k=a\tb", req, error));
  EXPECT_FALSE(parse_request_line(std::string("hemcpad1 ping\x01", 14), req, error));
}

TEST(ProtocolTest, RenderAndParseRoundTrip) {
  const std::string line =
      render_request_line("submit", {{"bytes", "9"}, {"client", "fleet-3"}, {"detach", "1"}});
  ASSERT_FALSE(line.empty());
  ASSERT_EQ(line.back(), '\n');
  Request req;
  std::string error;
  ASSERT_TRUE(parse_request_line(line.substr(0, line.size() - 1), req, error)) << error;
  EXPECT_EQ(req.verb, "submit");
  EXPECT_EQ(req.get("client"), "fleet-3");
  EXPECT_EQ(req.get_long("bytes"), 9);
}

TEST(ProtocolTest, RenderRejectsUntransportableValues) {
  EXPECT_THROW((void)render_request_line("submit", {{"k", "has space"}}), std::invalid_argument);
  EXPECT_THROW((void)render_request_line("submit", {{"k", "line\nbreak"}}), std::invalid_argument);
  EXPECT_THROW((void)render_request_line("bad verb", {}), std::invalid_argument);
}

// ---- JSON emission / extraction -------------------------------------------

TEST(ProtocolTest, JsonWriterEmitsFlatObject) {
  JsonWriter w;
  w.add("ok", true).add("id", 7L).add("state", "done").add_strings("rows", {"a,b", "c\"d"});
  const std::string json = w.str();
  EXPECT_EQ(json, "{\"ok\":true,\"id\":7,\"state\":\"done\",\"rows\":[\"a,b\",\"c\\\"d\"]}");
}

TEST(ProtocolTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(ProtocolTest, JsonFindExtractsScalars) {
  const std::string json =
      "{\"ok\":true,\"id\":7,\"state\":\"done\",\"message\":\"queue full (64 jobs)\"}";
  EXPECT_EQ(json_find(json, "ok"), "true");
  EXPECT_EQ(json_find(json, "id"), "7");
  EXPECT_EQ(json_find(json, "state"), "done");
  EXPECT_EQ(json_find(json, "message"), "queue full (64 jobs)");
  EXPECT_EQ(json_find(json, "missing"), "");
}

TEST(ProtocolTest, JsonFindIgnoresKeyLookalikesInsideValues) {
  // "state" appears inside the message string; the extractor must not bite.
  const std::string json = "{\"message\":\"\\\"state\\\":bogus\",\"state\":\"queued\"}";
  EXPECT_EQ(json_find(json, "state"), "queued");
}

TEST(ProtocolTest, JsonFindUnescapesStrings) {
  const std::string json = "{\"message\":\"a\\\"b\\\\c\\nd\"}";
  EXPECT_EQ(json_find(json, "message"), "a\"b\\c\nd");
}

TEST(ProtocolTest, JsonFindStringsExtractsArrays) {
  const std::string json = "{\"ok\":true,\"rows\":[\"x,1\",\"y,2\"],\"id\":3}";
  const auto rows = json_find_strings(json, "rows");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "x,1");
  EXPECT_EQ(rows[1], "y,2");
  EXPECT_TRUE(json_find_strings(json, "absent").empty());
}

// ---- socket I/O helpers ----------------------------------------------------

#if HEM_TEST_POSIX

class SocketPair : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void close_peer() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }
  int fds_[2] = {-1, -1};
};

TEST_F(SocketPair, ReadLineStripsNewlineAndCr) {
  ASSERT_EQ(write_all(fds_[1], "hello world\r\nnext\n", 1000), IoStatus::kOk);
  LineReader reader(fds_[0]);
  std::string line;
  ASSERT_EQ(reader.read_line(line, 1000), IoStatus::kOk);
  EXPECT_EQ(line, "hello world");
  ASSERT_EQ(reader.read_line(line, 1000), IoStatus::kOk);
  EXPECT_EQ(line, "next");
  EXPECT_FALSE(reader.buffered());
}

TEST_F(SocketPair, ReadLineTimesOutOnSilentPeer) {
  LineReader reader(fds_[0]);
  std::string line;
  EXPECT_EQ(reader.read_line(line, 50), IoStatus::kTimeout);
}

TEST_F(SocketPair, ReadLineReportsEofOnClose) {
  close_peer();
  LineReader reader(fds_[0]);
  std::string line;
  EXPECT_EQ(reader.read_line(line, 1000), IoStatus::kClosed);
}

TEST_F(SocketPair, OversizedLineIsAProtocolViolation) {
  const std::string flood(kMaxLineBytes + 16, 'x');  // no newline anywhere
  ASSERT_EQ(write_all(fds_[1], flood, 1000), IoStatus::kOk);
  LineReader reader(fds_[0]);
  std::string line;
  EXPECT_EQ(reader.read_line(line, 1000), IoStatus::kOversize);
}

TEST_F(SocketPair, ReadExactDeliversPayloadAfterLine) {
  ASSERT_EQ(write_all(fds_[1], "header\npayload!", 1000), IoStatus::kOk);
  LineReader reader(fds_[0]);
  std::string line, payload;
  ASSERT_EQ(reader.read_line(line, 1000), IoStatus::kOk);
  ASSERT_EQ(reader.read_exact(payload, 8, 1000), IoStatus::kOk);
  EXPECT_EQ(payload, "payload!");
}

TEST_F(SocketPair, ReadExactTimesOutOnShortPayload) {
  ASSERT_EQ(write_all(fds_[1], "only4", 1000), IoStatus::kOk);
  LineReader reader(fds_[0]);
  std::string payload;
  EXPECT_EQ(reader.read_exact(payload, 64, 50), IoStatus::kTimeout);
}

#endif  // HEM_TEST_POSIX

}  // namespace
}  // namespace hem::daemon
