#include "daemon/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "exec/worker_process.hpp"

#if defined(__unix__) || defined(__APPLE__)

namespace hem::daemon {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

const char* kTinyConfig =
    "resource CPU1 spp\n"
    "source s1 periodic period=10\n"
    "task A resource=CPU1 priority=1 cet=2\n"
    "activate A from=s1\n";

/// High-load burst config: analysis time grows with `jitter` (about 300 ms
/// at 2'000'000 on a debug build), and distinct jitters give distinct
/// fingerprints and task signatures, so slow jobs never hit cache/journal.
std::string slow_config(long jitter) {
  return "resource R spp\n"
         "source s sem period=1000 jitter=" + std::to_string(jitter) + "\n"
         "task H resource=R priority=2 cet=900\n"
         "activate H from=s\n"
         "option overload_check=off\n";
}

bool wait_until(const std::function<bool()>& pred, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

/// Options tuned for tests: small pool, quick timeouts, no journal.  The pid
/// keeps socket paths distinct when several test binaries run concurrently
/// (TempDir() is plain /tmp on Linux).
ServerOptions test_options(const std::string& tag) {
  ServerOptions o;
  o.socket_path =
      (fs::path(::testing::TempDir()) / (tag + "." + std::to_string(::getpid()) + ".sock"))
          .string();
  o.pool_width = 1;
  o.grace_ms = 5000;  // slow configs honour cancels within ~1s
  o.io_timeout_ms = 2000;
  // Generous: a TSan build sharing the machine with another test suite can
  // starve a connection thread for tens of seconds.
  o.idle_timeout_ms = 120'000;
  o.default_budget_ms = 30'000;
  return o;
}

class ServerFixture : public ::testing::Test {
 protected:
  void start(ServerOptions opts) {
    fs::remove(opts.socket_path);
    server_ = std::make_unique<Server>(std::move(opts));
    server_->start();
  }
  void TearDown() override {
    if (server_ && !server_->stopped()) server_->request_force_stop();
    if (server_) (void)server_->wait();
  }
  [[nodiscard]] Client connect() const {
    return Client(server_->socket_path(), /*io_timeout_ms=*/120'000);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServerFixture, PingReportsProtocolVersion) {
  start(test_options("ping"));
  Client client = connect();
  const std::string resp = client.ping();
  EXPECT_EQ(json_find(resp, "ok"), "true");
  EXPECT_EQ(json_find(resp, "version"), "hemcpad1");
}

TEST_F(ServerFixture, SubmitRunsToDone) {
  start(test_options("submit"));
  Client client = connect();
  const std::string sub = client.submit(kTinyConfig, {{"label", "tiny"}});
  ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
  EXPECT_EQ(json_find(sub, "state"), "queued");
  EXPECT_EQ(json_find(sub, "cached"), "false");
  EXPECT_FALSE(json_find(sub, "fingerprint").empty());

  const std::uint64_t id = std::stoull(json_find(sub, "id"));
  const std::string res = client.wait_result(id, 20'000);
  ASSERT_EQ(json_find(res, "ok"), "true") << res;
  EXPECT_EQ(json_find(res, "state"), "done");
  EXPECT_EQ(json_find(res, "converged"), "true");
  EXPECT_EQ(json_find(res, "degraded"), "false");
  const auto rows = json_find_strings(res, "rows");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0].find("tiny,A,CPU1,"), std::string::npos) << rows[0];
}

TEST_F(ServerFixture, ParseErrorFailsOnlyThatJob) {
  start(test_options("badcfg"));
  Client client = connect();
  const std::string sub = client.submit("task oops nonsense\n");
  ASSERT_EQ(json_find(sub, "ok"), "true") << sub;  // admission accepts, job fails
  const std::uint64_t id = std::stoull(json_find(sub, "id"));
  const std::string res = client.wait_result(id, 20'000);
  EXPECT_EQ(json_find(res, "state"), "failed");
  EXPECT_FALSE(json_find(res, "message").empty());

  // The daemon keeps serving.
  const std::string sub2 = client.submit(kTinyConfig);
  const std::string res2 = client.wait_result(std::stoull(json_find(sub2, "id")), 20'000);
  EXPECT_EQ(json_find(res2, "state"), "done");
}

TEST_F(ServerFixture, JournalServesIdempotentResubmission) {
  ServerOptions opts = test_options("journal");
  opts.journal_path = opts.socket_path + ".journal";
  fs::remove(opts.journal_path);
  start(opts);
  {
    Client client = connect();
    const std::string sub = client.submit(kTinyConfig);
    const std::uint64_t id = std::stoull(json_find(sub, "id"));
    const std::string cold = client.wait_result(id, 20'000);
    ASSERT_EQ(json_find(cold, "state"), "done");

    // Same bytes again: answered from the journal without re-running.
    const std::string resub = client.submit(kTinyConfig);
    EXPECT_EQ(json_find(resub, "state"), "done");
    EXPECT_EQ(json_find(resub, "cached"), "true");
    const std::string stats = client.stats();
    EXPECT_EQ(json_find(stats, "journal_hits"), "1");
    EXPECT_EQ(json_find(stats, "submitted"), "1");  // only the cold run was admitted
    client.drain();
  }
  EXPECT_EQ(server_->wait(), 0);

  // A fresh daemon on the same journal still remembers the result.
  ServerOptions opts2 = test_options("journal2");
  opts2.journal_path = opts.journal_path;
  start(opts2);
  Client client = connect();
  const std::string resub = client.submit(kTinyConfig);
  EXPECT_EQ(json_find(resub, "state"), "done") << resub;
  EXPECT_EQ(json_find(resub, "cached"), "true");
}

TEST_F(ServerFixture, WarmCacheSeedsResubmittedConfig) {
  // No journal: resubmission re-runs, but warm-seeded from the cache, and
  // the results must be byte-identical to the cold run.  Snapshot capture
  // is an in-process feature (EngineSnapshot holds live node pointers that
  // cannot cross the worker pipe), so this runs the daemon --no-isolate —
  // the deployment mode for trusted cache-heavy fleets.
  ServerOptions warm_opts = test_options("warm");
  warm_opts.isolate = false;
  start(warm_opts);
  Client client = connect();
  const std::string sub = client.submit(kTinyConfig);
  const std::string cold = client.wait_result(std::stoull(json_find(sub, "id")), 20'000);
  ASSERT_EQ(json_find(cold, "state"), "done");
  EXPECT_EQ(json_find(cold, "warm_seeded"), "0");

  const std::string sub2 = client.submit(kTinyConfig);
  EXPECT_EQ(json_find(sub2, "cached"), "false");  // no journal: a real re-run
  const std::string warm = client.wait_result(std::stoull(json_find(sub2, "id")), 20'000);
  ASSERT_EQ(json_find(warm, "state"), "done");
  EXPECT_EQ(json_find(warm, "warm_seeded"), "1");  // the one task seeded warm
  EXPECT_EQ(json_find_strings(warm, "rows"), json_find_strings(cold, "rows"));

  const std::string stats = client.stats();
  EXPECT_EQ(json_find(stats, "cache_exact_hits"), "1");
}

TEST_F(ServerFixture, OverloadedQueueRejectsExplicitly) {
  ServerOptions opts = test_options("overload");
  opts.queue_max = 2;
  start(opts);
  Client client = connect();
  // One slow job occupies the pool; wait for dispatch so it stops counting
  // against the queue bound, then two more fill the bounded queue.
  std::vector<std::uint64_t> ids;
  const std::string blocker = client.submit(slow_config(3'000'000));
  ASSERT_EQ(json_find(blocker, "ok"), "true") << blocker;
  ids.push_back(std::stoull(json_find(blocker, "id")));
  ASSERT_TRUE(wait_until([&] { return json_find(client.stats(), "running") == "1"; }, 5s));
  for (int i = 1; i < 3; ++i) {
    const std::string sub = client.submit(slow_config(3'000'000 + i));
    ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
    ids.push_back(std::stoull(json_find(sub, "id")));
  }
  const std::string rejected = client.submit(slow_config(3'000'100));
  EXPECT_EQ(json_find(rejected, "ok"), "false");
  EXPECT_EQ(json_find(rejected, "error"), "overloaded");
  EXPECT_NE(json_find(rejected, "message").find("queue full"), std::string::npos);

  // Shedding is load-dependent, not sticky: the daemon still answers, and
  // cancelling queued work reopens admission.
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
  (void)client.cancel(ids[2]);
  const std::string retry = client.submit(slow_config(3'000'100));
  EXPECT_EQ(json_find(retry, "ok"), "true") << retry;
  const std::string stats = client.stats();
  EXPECT_EQ(json_find(stats, "rejected_overloaded"), "1");
}

TEST_F(ServerFixture, PerClientQuotaProtectsOtherClients) {
  ServerOptions opts = test_options("quota");
  opts.client_quota = 2;
  start(opts);
  Client client = connect();
  (void)client.submit(slow_config(3'100'000), {{"client", "greedy"}});
  (void)client.submit(slow_config(3'100'001), {{"client", "greedy"}});
  const std::string rejected = client.submit(slow_config(3'100'002), {{"client", "greedy"}});
  EXPECT_EQ(json_find(rejected, "ok"), "false");
  EXPECT_EQ(json_find(rejected, "error"), "quota");

  // A different client is unaffected by the greedy one's quota.
  const std::string other = client.submit(kTinyConfig, {{"client", "modest"}});
  EXPECT_EQ(json_find(other, "ok"), "true") << other;
  const std::string stats = client.stats();
  EXPECT_EQ(json_find(stats, "rejected_quota"), "1");
}

TEST_F(ServerFixture, RoundRobinKeepsFloodersFromStarvingOthers) {
  start(test_options("fair"));
  Client client = connect();
  // alice floods three ~800ms jobs; bob submits one tiny job afterwards.
  std::vector<std::uint64_t> alice;
  for (int i = 0; i < 3; ++i) {
    const std::string sub = client.submit(slow_config(3'500'000 + i), {{"client", "alice"}});
    ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
    alice.push_back(std::stoull(json_find(sub, "id")));
  }
  const std::string bob_sub = client.submit(kTinyConfig, {{"client", "bob"}});
  ASSERT_EQ(json_find(bob_sub, "ok"), "true") << bob_sub;
  const std::uint64_t bob = std::stoull(json_find(bob_sub, "id"));

  // Bob is behind alice's first job on a width-1 pool; sanitizer builds can
  // stretch that job well past 30 s, so wait with generous slack.
  const std::string bob_res = client.wait_result(bob, 180'000);
  ASSERT_EQ(json_find(bob_res, "state"), "done") << bob_res;
  // Round-robin dispatch ran bob's job ahead of alice's backlog: her last
  // job cannot be terminal yet (global FIFO would finish it before bob).
  const std::string tail = client.request("status", {{"id", std::to_string(alice[2])}});
  const std::string state = json_find(tail, "state");
  EXPECT_TRUE(state == "queued" || state == "running") << tail;
  for (const std::uint64_t id : alice) (void)client.cancel(id);
}

TEST_F(ServerFixture, CancelQueuedAndRunningJobs) {
  start(test_options("cancel"));
  Client client = connect();
  const std::string run_sub = client.submit(slow_config(3'600'000));
  const std::uint64_t running = std::stoull(json_find(run_sub, "id"));
  const std::string queue_sub = client.submit(slow_config(3'600'001));
  const std::uint64_t queued = std::stoull(json_find(queue_sub, "id"));

  // A queued job cancels instantly and never runs.
  const std::string c1 = client.cancel(queued);
  EXPECT_EQ(json_find(c1, "state"), "cancelled");
  const std::string r1 = client.wait_result(queued, 5000);
  EXPECT_EQ(json_find(r1, "state"), "cancelled");
  EXPECT_EQ(json_find(r1, "cancel_reason"), "user");

  // A running job is soft-cancelled and turns terminal shortly after
  // (sanitizer builds can stretch the cancel acknowledgment to tens of
  // seconds, hence the slack).
  (void)client.cancel(running);
  const std::string r2 = client.wait_result(running, 180'000);
  EXPECT_EQ(json_find(r2, "state"), "cancelled") << r2;
  EXPECT_EQ(json_find(r2, "cancel_reason"), "user");

  // Cancelling a terminal job is idempotent, not an error.
  const std::string c3 = client.cancel(queued);
  EXPECT_EQ(json_find(c3, "ok"), "true");
  EXPECT_EQ(json_find(c3, "state"), "cancelled");
}

TEST_F(ServerFixture, BudgetDeadlineCancelsRunawayJob) {
  ServerOptions opt = test_options("budget");
  // A loaded machine can delay the job's next cancellation check by seconds;
  // a generous grace keeps the watchdog's soft-cancel from escalating to
  // abandonment (which is exactly what this test asserts does not happen).
  opt.grace_ms = 60'000;
  start(opt);
  Client client = connect();
  const std::string sub = client.submit(slow_config(4'000'000), {{"budget_ms", "200"}});
  ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
  const std::string res = client.wait_result(std::stoull(json_find(sub, "id")), 120'000);
  EXPECT_EQ(json_find(res, "state"), "cancelled") << res;
  EXPECT_EQ(json_find(res, "cancel_reason"), "watchdog");
  const std::string stats = client.stats();
  EXPECT_EQ(json_find(stats, "watchdog_cancels"), "1");
  EXPECT_EQ(json_find(stats, "abandoned"), "0");  // cancel honoured within grace
}

TEST_F(ServerFixture, UnknownIdsAreExplicitErrors) {
  start(test_options("unknown"));
  Client client = connect();
  for (const char* verb : {"status", "result", "cancel"}) {
    const std::string resp = client.request(verb, {{"id", "424242"}});
    EXPECT_EQ(json_find(resp, "ok"), "false") << resp;
    EXPECT_EQ(json_find(resp, "error"), "unknown_id") << resp;
  }
}

TEST_F(ServerFixture, DrainFinishesWorkRejectsNewAndExitsZero) {
  ServerOptions opt = test_options("drain");
  // The drain must finish this job, not the watchdog: sanitizer builds on a
  // loaded machine stretch the ~300 ms job past the default 30 s test budget.
  opt.default_budget_ms = 600'000;
  start(opt);
  Client client = connect();
  const std::string sub = client.submit(slow_config(2'000'000));
  const std::uint64_t id = std::stoull(json_find(sub, "id"));

  const std::string drain = client.drain();
  EXPECT_EQ(json_find(drain, "ok"), "true");

  const std::string rejected = client.submit(kTinyConfig);
  EXPECT_EQ(json_find(rejected, "ok"), "false");
  EXPECT_EQ(json_find(rejected, "error"), "draining");

  // The in-flight job still runs to its real result.  Sanitizer builds on a
  // loaded machine stretch the ~300 ms job well past 30 s, hence the slack.
  const std::string res = client.wait_result(id, 180'000);
  EXPECT_EQ(json_find(res, "state"), "done") << res;
  client.close();
  EXPECT_EQ(server_->wait(), 0);
  EXPECT_TRUE(server_->stopped());
}

TEST_F(ServerFixture, ForceStopCancelsEverythingAndExitsSix) {
  start(test_options("force"));
  Client client = connect();
  const std::string sub = client.submit(slow_config(8'000'001));
  ASSERT_EQ(json_find(sub, "ok"), "true");
  server_->request_force_stop();
  EXPECT_EQ(server_->wait(), 6);
}

TEST_F(ServerFixture, StaleSocketFileIsReplacedOnStartup) {
  ServerOptions opts = test_options("stale");
  {  // leave a dead socket file behind
    ServerOptions first = opts;
    Server dead(first);
    dead.start();
    dead.request_force_stop();
    (void)dead.wait();
  }
  ASSERT_TRUE(fs::exists(opts.socket_path) || true);  // file may or may not linger
  start(opts);  // must bind regardless
  Client client = connect();
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
}

TEST_F(ServerFixture, SecondDaemonOnLiveSocketRefusesToStart) {
  start(test_options("live"));
  ServerOptions dup = server_->options();
  Server second(dup);
  EXPECT_THROW(second.start(), std::runtime_error);
  // The running daemon is unharmed.
  Client client = connect();
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
}

TEST_F(ServerFixture, StatsExposeQueueAndCacheCounters) {
  // Warm snapshots are only captured in-process (see the warm-cache test),
  // so the cache_entries expectation needs --no-isolate.
  ServerOptions opts = test_options("stats");
  opts.isolate = false;
  start(opts);
  Client client = connect();
  const std::string sub = client.submit(kTinyConfig);
  (void)client.wait_result(std::stoull(json_find(sub, "id")), 20'000);
  const std::string stats = client.stats();
  EXPECT_EQ(json_find(stats, "ok"), "true");
  EXPECT_EQ(json_find(stats, "submitted"), "1");
  EXPECT_EQ(json_find(stats, "done"), "1");
  EXPECT_EQ(json_find(stats, "pool_width"), "1");
  EXPECT_EQ(json_find(stats, "cache_entries"), "1");
  EXPECT_EQ(json_find(stats, "isolate"), "false");
  EXPECT_EQ(json_find(stats, "draining"), "false");
  EXPECT_TRUE(wait_until(
      [&] {
        const std::string s = connect().stats();
        return json_find(s, "queue_depth") == "0" && json_find(s, "running") == "0";
      },
      5s));
}

// ---- client connect retries --------------------------------------------

TEST(DaemonClientTest, NoRetriesFailsFastWithAClearMessage) {
  const std::string missing =
      (fs::path(::testing::TempDir()) / ("noclient." + std::to_string(::getpid()) + ".sock"))
          .string();
  fs::remove(missing);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    Client client(missing, /*io_timeout_ms=*/1000, /*connect_retries=*/0);
    FAIL() << "expected the connect to fail";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("cannot connect to daemon"), std::string::npos) << msg;
    EXPECT_NE(msg.find(missing), std::string::npos) << msg;
    EXPECT_NE(msg.find("hemcpad"), std::string::npos) << msg;
  }
  // Zero retries means zero backoff sleeps: the failure is immediate.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
}

TEST(DaemonClientTest, RetriesGiveUpOnceTheBudgetIsSpent) {
  const std::string missing =
      (fs::path(::testing::TempDir()) / ("noclient2." + std::to_string(::getpid()) + ".sock"))
          .string();
  fs::remove(missing);
  EXPECT_THROW(Client(missing, /*io_timeout_ms=*/1000, /*connect_retries=*/2),
               std::runtime_error);
}

TEST_F(ServerFixture, ClientRetriesConnectUntilTheDaemonComesUp) {
  // The daemon binds its socket ~300ms after the client starts dialling;
  // the client's jittered exponential backoff must ride out the gap (this
  // is the restart window every `hemcpad` client verb has to survive).
  ServerOptions opts = test_options("lateboot");
  const std::string socket_path = opts.socket_path;
  fs::remove(socket_path);
  std::thread boot([&] {
    std::this_thread::sleep_for(300ms);
    start(opts);
  });
  try {
    Client client(socket_path, /*io_timeout_ms=*/120'000, /*connect_retries=*/8);
    EXPECT_EQ(json_find(client.ping(), "ok"), "true");
  } catch (...) {
    boot.join();
    throw;
  }
  boot.join();
}

// ---- crash isolation -------------------------------------------------

const char* kCrasherConfig =
    "option inject_fault=segv\n"
    "resource CPU1 spp\n"
    "source s1 periodic period=250\n"
    "task C resource=CPU1 priority=1 cet=24\n"
    "activate C from=s1\n";

TEST_F(ServerFixture, CrashingConfigIsIsolatedThenPoisoned) {
  if (!exec::WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  ServerOptions opts = test_options("poison");
  opts.journal_path = opts.socket_path + ".journal";
  fs::remove(opts.journal_path);
  start(opts);
  Client client = connect();

  // First crash: the worker process dies, the daemon records it and lives.
  const std::string sub1 = client.submit(kCrasherConfig);
  ASSERT_EQ(json_find(sub1, "ok"), "true") << sub1;
  const std::string res1 = client.wait_result(std::stoull(json_find(sub1, "id")), 20'000);
  EXPECT_EQ(json_find(res1, "state"), "crashed") << res1;
  EXPECT_NE(json_find(res1, "message").find("signal"), std::string::npos) << res1;

  // Second crash promotes the config to poisoned.
  const std::string sub2 = client.submit(kCrasherConfig);
  ASSERT_EQ(json_find(sub2, "ok"), "true") << sub2;
  EXPECT_EQ(json_find(sub2, "cached"), "false");  // crashed != terminal-done: re-runs
  const std::string res2 = client.wait_result(std::stoull(json_find(sub2, "id")), 20'000);
  EXPECT_EQ(json_find(res2, "state"), "poisoned") << res2;

  // Third submission short-circuits: quarantined, nothing runs.
  const std::string sub3 = client.submit(kCrasherConfig);
  EXPECT_EQ(json_find(sub3, "state"), "poisoned") << sub3;
  EXPECT_EQ(json_find(sub3, "cached"), "true");

  // The daemon kept serving through all of it.
  const std::string ok = client.submit(kTinyConfig);
  const std::string res = client.wait_result(std::stoull(json_find(ok, "id")), 20'000);
  EXPECT_EQ(json_find(res, "state"), "done");

  const std::string stats = client.stats();
  EXPECT_EQ(json_find(stats, "crashed"), "1");
  EXPECT_EQ(json_find(stats, "poisoned"), "1");
  EXPECT_EQ(json_find(stats, "poisoned_rejects"), "1");
  EXPECT_EQ(json_find(stats, "isolate"), "true");
}

TEST_F(ServerFixture, PoisonQuarantineSurvivesDaemonRestart) {
  if (!exec::WorkerProcess::supported()) GTEST_SKIP() << "no process isolation here";
  ServerOptions opts = test_options("poisonjournal");
  opts.journal_path = opts.socket_path + ".journal";
  fs::remove(opts.journal_path);
  start(opts);
  {
    Client client = connect();
    const std::string sub1 = client.submit(kCrasherConfig);
    (void)client.wait_result(std::stoull(json_find(sub1, "id")), 20'000);
    const std::string sub2 = client.submit(kCrasherConfig);
    const std::string res2 = client.wait_result(std::stoull(json_find(sub2, "id")), 20'000);
    ASSERT_EQ(json_find(res2, "state"), "poisoned") << res2;
    client.drain();
  }
  EXPECT_EQ(server_->wait(), 0);

  // A fresh daemon on the same journal seeds its crash ledger from the
  // `poisoned` record: the config is refused without forking a worker.
  ServerOptions opts2 = test_options("poisonjournal2");
  opts2.journal_path = opts.journal_path;
  start(opts2);
  Client client = connect();
  const std::string resub = client.submit(kCrasherConfig);
  EXPECT_EQ(json_find(resub, "state"), "poisoned") << resub;
  EXPECT_EQ(json_find(resub, "cached"), "true");
  // And it still serves clean work.
  const std::string ok = client.submit(kTinyConfig);
  const std::string res = client.wait_result(std::stoull(json_find(ok, "id")), 20'000);
  EXPECT_EQ(json_find(res, "state"), "done");
}

}  // namespace
}  // namespace hem::daemon

#endif  // POSIX
