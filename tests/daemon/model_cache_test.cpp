#include "daemon/model_cache.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/analysis_attempt.hpp"
#include "model/textual_config.hpp"

namespace hem::daemon {
namespace {

const char* kConfigA =
    "resource CPU1 spp\n"
    "source s1 periodic period=10\n"
    "task A resource=CPU1 priority=1 cet=2\n"
    "activate A from=s1\n";

const char* kConfigB =
    "resource CPU1 spp\n"
    "source s1 periodic period=20\n"
    "task B resource=CPU1 priority=1 cet=3\n"
    "activate B from=s1\n";

// kConfigA plus an independent second resource: shares task A's signature.
const char* kConfigAPlus =
    "resource CPU1 spp\n"
    "resource CPU2 spp\n"
    "source s1 periodic period=10\n"
    "source s2 periodic period=50\n"
    "task A resource=CPU1 priority=1 cet=2\n"
    "task C resource=CPU2 priority=1 cet=4\n"
    "activate A from=s1\n"
    "activate C from=s2\n";

cpa::ParsedSystem parse(const std::string& text) {
  std::istringstream in(text);
  return cpa::parse_system_config(in);
}

std::shared_ptr<const cpa::EngineSnapshot> snapshot_of(const std::string& text) {
  cpa::ParsedSystem parsed = parse(text);
  exec::AttemptOptions opt;
  opt.make_snapshot = true;
  const exec::AttemptOutcome out = exec::run_analysis_attempt(parsed, "cache-test", opt, nullptr);
  EXPECT_TRUE(out.ok) << out.message;
  EXPECT_TRUE(out.snapshot && out.snapshot->valid());
  return out.snapshot;
}

TEST(WarmModelCacheTest, FindExactHitsAndMisses) {
  WarmModelCache cache(4);
  EXPECT_EQ(cache.find_exact(0x1111), nullptr);
  cache.insert(0x1111, snapshot_of(kConfigA));
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.find_exact(0x1111);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->valid());
  EXPECT_EQ(cache.exact_hits(), 1);
  EXPECT_EQ(cache.find_exact(0x2222), nullptr);
}

TEST(WarmModelCacheTest, InsertReplacesExistingFingerprint) {
  WarmModelCache cache(4);
  cache.insert(0x1111, snapshot_of(kConfigA));
  const auto replacement = snapshot_of(kConfigB);
  cache.insert(0x1111, replacement);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find_exact(0x1111), replacement);
}

TEST(WarmModelCacheTest, IgnoresInvalidSnapshots) {
  WarmModelCache cache(4);
  cache.insert(0x1111, nullptr);
  cache.insert(0x2222, std::make_shared<cpa::EngineSnapshot>());  // empty = invalid
  EXPECT_EQ(cache.size(), 0u);
}

TEST(WarmModelCacheTest, BestBasePicksLargestSignatureOverlap) {
  WarmModelCache cache(4);
  const auto snap_a = snapshot_of(kConfigA);
  const auto snap_b = snapshot_of(kConfigB);
  cache.insert(0xAAAA, snap_a);
  cache.insert(0xBBBB, snap_b);

  // kConfigAPlus shares task A with snap_a and nothing with snap_b.
  cpa::ParsedSystem variant = parse(kConfigAPlus);
  EXPECT_EQ(cache.best_base(variant.system), snap_a);
  EXPECT_EQ(cache.base_hits(), 1);
}

TEST(WarmModelCacheTest, BestBaseReturnsNullOnZeroOverlapAndCountsMiss) {
  WarmModelCache cache(4);
  cache.insert(0xAAAA, snapshot_of(kConfigA));
  cpa::ParsedSystem unrelated = parse(kConfigB);
  EXPECT_EQ(cache.best_base(unrelated.system), nullptr);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.base_hits(), 0);
}

TEST(WarmModelCacheTest, EvictsLeastRecentlyUsed) {
  WarmModelCache cache(2);
  const auto snap_a = snapshot_of(kConfigA);
  cache.insert(0xAAAA, snap_a);
  cache.insert(0xBBBB, snapshot_of(kConfigB));
  (void)cache.find_exact(0xAAAA);  // touch A so B is the LRU entry
  cache.insert(0xCCCC, snapshot_of(kConfigAPlus));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find_exact(0xAAAA), snap_a);   // survived
  EXPECT_EQ(cache.find_exact(0xBBBB), nullptr);  // evicted
}

TEST(WarmModelCacheTest, EvictedSnapshotStaysUsableWhileHeld) {
  // Eviction must never invalidate a snapshot a running job still reads.
  WarmModelCache cache(1);
  const auto held = snapshot_of(kConfigA);
  cache.insert(0xAAAA, held);
  cache.insert(0xBBBB, snapshot_of(kConfigB));  // evicts 0xAAAA
  EXPECT_EQ(cache.find_exact(0xAAAA), nullptr);
  ASSERT_TRUE(held->valid());
  EXPECT_FALSE(held->tasks.empty());
  EXPECT_EQ(held->tasks[0].name, "A");
}

// ---- approximate byte accounting (--cache-bytes) ----------------------

TEST(WarmModelCacheTest, ApproxBytesIsPositiveAndDedupsSharedNodes) {
  const auto snap = snapshot_of(kConfigA);
  const std::size_t bytes = snap->approx_bytes();
  EXPECT_GT(bytes, sizeof(cpa::EngineSnapshot));
  // A snapshot with more tasks (and more distinct model nodes) costs more.
  EXPECT_GT(snapshot_of(kConfigAPlus)->approx_bytes(), bytes);
  // Duplicating a task that shares every node must not double the node
  // estimate: distinct nodes are counted once.
  cpa::EngineSnapshot doubled = *snap;
  doubled.tasks.push_back(doubled.tasks[0]);
  EXPECT_LT(doubled.approx_bytes(), 2 * bytes);
}

TEST(WarmModelCacheTest, BytesTrackInsertReplaceAndEvict) {
  WarmModelCache cache(4, /*max_bytes=*/0);  // unlimited: pure accounting
  EXPECT_EQ(cache.bytes(), 0u);
  const auto snap_a = snapshot_of(kConfigA);
  const auto snap_b = snapshot_of(kConfigB);
  cache.insert(0xAAAA, snap_a);
  EXPECT_EQ(cache.bytes(), snap_a->approx_bytes());
  cache.insert(0xBBBB, snap_b);
  EXPECT_EQ(cache.bytes(), snap_a->approx_bytes() + snap_b->approx_bytes());
  // Replacing a fingerprint swaps its contribution, not adds to it.
  cache.insert(0xAAAA, snap_b);
  EXPECT_EQ(cache.bytes(), 2 * snap_b->approx_bytes());
}

TEST(WarmModelCacheTest, ByteCapEvictsLruButKeepsTheNewestInsertion) {
  const auto snap_a = snapshot_of(kConfigA);
  const auto snap_b = snapshot_of(kConfigB);
  const auto snap_c = snapshot_of(kConfigAPlus);
  // Cap sized for roughly one snapshot: every insert evicts the rest.
  WarmModelCache cache(16, snap_a->approx_bytes());
  cache.insert(0xAAAA, snap_a);
  EXPECT_EQ(cache.size(), 1u);
  cache.insert(0xBBBB, snap_b);
  // The byte cap never evicts the entry just inserted, even when it alone
  // exceeds the cap — an always-empty cache would be useless.
  EXPECT_EQ(cache.find_exact(0xBBBB), snap_b);
  EXPECT_EQ(cache.find_exact(0xAAAA), nullptr);
  EXPECT_GE(cache.evictions(), 1);
  cache.insert(0xCCCC, snap_c);
  EXPECT_EQ(cache.find_exact(0xCCCC), snap_c);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_EQ(cache.max_bytes(), snap_a->approx_bytes());
}

TEST(WarmModelCacheTest, ZeroByteCapMeansUnlimited) {
  WarmModelCache cache(8);  // default max_bytes = 0
  EXPECT_EQ(cache.max_bytes(), 0u);
  cache.insert(0xAAAA, snapshot_of(kConfigA));
  cache.insert(0xBBBB, snapshot_of(kConfigB));
  cache.insert(0xCCCC, snapshot_of(kConfigAPlus));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 0);
}

}  // namespace
}  // namespace hem::daemon
