/// \file daemon_fault_test.cpp
/// Fault-injection suite for the analysis daemon: misbehaving peers
/// (disconnects mid-frame, half-open sockets, oversized floods, protocol
/// garbage) and concurrent cancel storms.  Every test asserts the daemon
/// stays responsive, leaks no jobs, and keeps its caches and journal
/// consistent — the harness the robustness contract is verified against,
/// and the suite CI runs under TSan/ASan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "exec/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace hem::daemon {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

const char* kTinyConfig =
    "resource CPU1 spp\n"
    "source s1 periodic period=10\n"
    "task A resource=CPU1 priority=1 cet=2\n"
    "activate A from=s1\n";

std::string slow_config(long jitter) {
  return "resource R spp\n"
         "source s sem period=1000 jitter=" + std::to_string(jitter) + "\n"
         "task H resource=R priority=2 cet=900\n"
         "activate H from=s\n"
         "option overload_check=off\n";
}

bool wait_until(const std::function<bool()>& pred, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

/// Raw AF_UNIX connection for simulating peers the Client class refuses to
/// be: half-open sockets, mid-frame disconnects, garbage writers.
class RawPeer {
 public:
  explicit RawPeer(const std::string& socket_path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", socket_path.c_str());
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawPeer() { close(); }
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  IoStatus send(const std::string& data) { return write_all(fd_, data, 2000); }
  IoStatus read_line(std::string& line, long timeout_ms) {
    LineReader reader(fd_);
    return reader.read_line(line, timeout_ms);
  }
  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

ServerOptions fault_options(const std::string& tag) {
  ServerOptions o;
  // Pid-qualified path: concurrent test processes must not share sockets.
  o.socket_path =
      (fs::path(::testing::TempDir()) / (tag + "." + std::to_string(::getpid()) + ".sock"))
          .string();
  o.pool_width = 2;
  o.grace_ms = 5000;
  o.io_timeout_ms = 1000;
  o.idle_timeout_ms = 120'000;  // tests that need idle expiry shrink this
  return o;
}

class DaemonFaultTest : public ::testing::Test {
 protected:
  void start(ServerOptions opts) {
    fs::remove(opts.socket_path);
    server_ = std::make_unique<Server>(std::move(opts));
    server_->start();
  }
  void TearDown() override {
    if (server_ && !server_->stopped()) server_->request_force_stop();
    if (server_) (void)server_->wait();
  }
  [[nodiscard]] Client connect() const { return Client(server_->socket_path()); }
  [[nodiscard]] std::string stat(const std::string& key) const {
    Client probe(server_->socket_path());
    return json_find(probe.stats(), key);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(DaemonFaultTest, DisconnectMidSubmitBodyLeavesDaemonResponsive) {
  start(fault_options("midframe"));
  for (int round = 0; round < 8; ++round) {
    RawPeer peer(server_->socket_path());
    ASSERT_TRUE(peer.connected());
    // Promise 4096 payload bytes, deliver 10, vanish.
    ASSERT_EQ(peer.send("hemcpad1 submit bytes=4096\n0123456789"), IoStatus::kOk);
    peer.close();
  }
  Client client = connect();
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
  const std::string sub = client.submit(kTinyConfig);
  ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
  const std::string res = client.wait_result(std::stoull(json_find(sub, "id")), 20'000);
  EXPECT_EQ(json_find(res, "state"), "done");
  EXPECT_EQ(stat("submitted"), "1");  // the truncated frames admitted nothing
}

TEST_F(DaemonFaultTest, DisconnectCancelsOrphanedRunningJob) {
  start(fault_options("orphan"));
  std::uint64_t id = 0;
  {
    Client victim = connect();
    const std::string sub = victim.submit(slow_config(8'000'002));
    ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
    id = std::stoull(json_find(sub, "id"));
    victim.close();  // walk away without collecting the result
  }
  Client observer = connect();
  ASSERT_TRUE(wait_until(
      [&] {
        const std::string st =
            observer.request("status", {{"id", std::to_string(id)}});
        return json_find(st, "state") == "cancelled";
      },
      20s));
  const std::string res = observer.request("result", {{"id", std::to_string(id)}});
  EXPECT_EQ(json_find(res, "cancel_reason"), "disconnect");
  EXPECT_EQ(stat("disconnect_cancels"), "1");
}

TEST_F(DaemonFaultTest, DisconnectCancelsOrphanedQueuedJobs) {
  ServerOptions opts = fault_options("orphanq");
  opts.pool_width = 1;
  start(opts);
  Client blocker_client = connect();
  const std::string blocker = blocker_client.submit(slow_config(8'000'003));
  ASSERT_EQ(json_find(blocker, "ok"), "true");
  std::uint64_t queued = 0;
  {
    Client victim = connect();
    const std::string sub = victim.submit(kTinyConfig);
    ASSERT_EQ(json_find(sub, "ok"), "true");
    queued = std::stoull(json_find(sub, "id"));
  }  // disconnects with the job still queued
  Client observer = connect();
  ASSERT_TRUE(wait_until(
      [&] {
        const std::string st = observer.request("status", {{"id", std::to_string(queued)}});
        return json_find(st, "state") == "cancelled";
      },
      10s));
  const std::string res = observer.request("result", {{"id", std::to_string(queued)}});
  EXPECT_EQ(json_find(res, "cancel_reason"), "disconnect");
}

TEST_F(DaemonFaultTest, DetachedJobSurvivesDisconnect) {
  start(fault_options("detach"));
  std::uint64_t id = 0;
  {
    Client fire_and_forget = connect();
    const std::string sub = fire_and_forget.submit(kTinyConfig, {{"detach", "1"}});
    ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
    id = std::stoull(json_find(sub, "id"));
  }
  Client observer = connect();
  const std::string res = observer.wait_result(id, 20'000);
  EXPECT_EQ(json_find(res, "state"), "done") << res;
  EXPECT_EQ(stat("disconnect_cancels"), "0");
}

TEST_F(DaemonFaultTest, HalfOpenConnectionTimesOutAndFreesItsSlot) {
  ServerOptions opts = fault_options("halfopen");
  opts.idle_timeout_ms = 200;
  opts.max_connections = 2;
  start(opts);
  RawPeer zombie(server_->socket_path());
  ASSERT_TRUE(zombie.connected());
  // Say nothing.  The daemon must hang up on its own.
  std::string line;
  EXPECT_EQ(zombie.read_line(line, 5000), IoStatus::kClosed);

  // Both connection slots are usable again afterwards.
  Client a = connect();
  Client b = connect();
  EXPECT_EQ(json_find(a.ping(), "ok"), "true");
  EXPECT_EQ(json_find(b.ping(), "ok"), "true");
}

TEST_F(DaemonFaultTest, ConnectionLimitTurnsAwayExtraPeersExplicitly) {
  ServerOptions opts = fault_options("connlimit");
  opts.max_connections = 1;
  start(opts);
  Client occupant = connect();
  ASSERT_EQ(json_find(occupant.ping(), "ok"), "true");
  RawPeer extra(server_->socket_path());
  ASSERT_TRUE(extra.connected());
  std::string line;
  ASSERT_EQ(extra.read_line(line, 5000), IoStatus::kOk);
  EXPECT_EQ(json_find(line, "error"), "busy") << line;
  // The admitted connection keeps working.
  EXPECT_EQ(json_find(occupant.ping(), "ok"), "true");
}

TEST_F(DaemonFaultTest, OversizedFrameFloodIsShedNotBuffered) {
  ServerOptions opts = fault_options("flood");
  opts.max_frame_bytes = 1024;
  start(opts);
  for (int i = 0; i < 20; ++i) {
    RawPeer peer(server_->socket_path());
    ASSERT_TRUE(peer.connected());
    // Announce a frame far over the cap; the daemon must reject on the
    // header alone and close without reading the body.
    ASSERT_EQ(peer.send("hemcpad1 submit bytes=10485760\n"), IoStatus::kOk);
    std::string line;
    ASSERT_EQ(peer.read_line(line, 5000), IoStatus::kOk);
    EXPECT_EQ(json_find(line, "error"), "too_large") << line;
  }
  EXPECT_EQ(stat("rejected_too_large"), "20");
  EXPECT_EQ(stat("submitted"), "0");
  Client client = connect();
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
}

TEST_F(DaemonFaultTest, OversizedRequestLineIsAProtocolViolation) {
  start(fault_options("longline"));
  RawPeer peer(server_->socket_path());
  ASSERT_TRUE(peer.connected());
  ASSERT_EQ(peer.send(std::string(2 * kMaxLineBytes, 'x')), IoStatus::kOk);
  std::string line;
  ASSERT_EQ(peer.read_line(line, 5000), IoStatus::kOk);
  EXPECT_EQ(json_find(line, "error"), "protocol") << line;
  EXPECT_EQ(peer.read_line(line, 5000), IoStatus::kClosed);  // connection dropped
  Client client = connect();
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
}

TEST_F(DaemonFaultTest, GarbageLinesGetExplicitProtocolErrors) {
  start(fault_options("garbage"));
  for (const std::string junk :
       {std::string("hello daemon\n"), std::string("hemcpad9 ping\n"),
        std::string("hemcpad1\n"), std::string("hemcpad1 submit =broken\n"),
        std::string("\x01\x02\x03\n")}) {
    RawPeer peer(server_->socket_path());
    ASSERT_TRUE(peer.connected());
    ASSERT_EQ(peer.send(junk), IoStatus::kOk);
    std::string line;
    ASSERT_EQ(peer.read_line(line, 5000), IoStatus::kOk) << "junk: " << junk;
    EXPECT_EQ(json_find(line, "ok"), "false");
    EXPECT_EQ(json_find(line, "error"), "protocol");
  }
  Client client = connect();
  EXPECT_EQ(json_find(client.ping(), "ok"), "true");
}

TEST_F(DaemonFaultTest, ConcurrentCancelStormLeaksNothing) {
  ServerOptions opts = fault_options("storm");
  opts.pool_width = 2;
  opts.queue_max = 128;
  opts.client_quota = 64;
  start(opts);

  constexpr int kThreads = 6;
  constexpr int kJobsPerThread = 5;
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client(server_->socket_path());
      for (int j = 0; j < kJobsPerThread; ++j) {
        // Mix fast jobs with slow ones that will be cancel-stormed.
        const bool slow = (t + j) % 2 == 0;
        const std::string cfg =
            slow ? slow_config(4'000'000 + t * 100 + j) : kTinyConfig;
        const std::string sub =
            client.submit(cfg, {{"client", "storm" + std::to_string(t)}});
        if (json_find(sub, "ok") != "true") continue;  // overload shed is legal
        admitted.fetch_add(1);
        const std::uint64_t id = std::stoull(json_find(sub, "id"));
        ids[t].push_back(id);
        // Immediately storm the new job (and a neighbour) with cancels.
        (void)client.cancel(id);
        (void)client.cancel(id);
        if (!ids[t].empty()) (void)client.cancel(ids[t].front());
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_GT(admitted.load(), 0);

  // No leaked jobs: the queue and the pool drain to zero...
  ASSERT_TRUE(wait_until(
      [&] { return stat("queue_depth") == "0" && stat("running") == "0"; }, 30s));
  // ...and every admitted job reached a terminal state.
  Client audit = connect();
  int terminal = 0;
  for (const auto& batch : ids) {
    for (const std::uint64_t id : batch) {
      const std::string st = audit.request("status", {{"id", std::to_string(id)}});
      const std::string state = json_find(st, "state");
      EXPECT_TRUE(state == "done" || state == "failed" || state == "cancelled" ||
                  state == "abandoned")
          << st;
      ++terminal;
    }
  }
  EXPECT_EQ(terminal, admitted.load());
  EXPECT_EQ(json_find(audit.ping(), "ok"), "true");
}

TEST_F(DaemonFaultTest, DrainUnderLoadJournalsEveryAdmittedJob) {
  ServerOptions opts = fault_options("drainload");
  opts.pool_width = 1;
  opts.journal_path = opts.socket_path + ".journal";
  fs::remove(opts.journal_path);
  start(opts);

  std::vector<std::string> fingerprints;
  Client client = connect();
  for (int i = 0; i < 5; ++i) {
    // Distinct tiny configs (varied period) so each is a real run.
    const std::string cfg =
        "resource CPU1 spp\nsource s1 periodic period=" + std::to_string(10 + i) +
        "\ntask A resource=CPU1 priority=1 cet=2\nactivate A from=s1\n";
    const std::string sub = client.submit(cfg);
    ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
    fingerprints.push_back(json_find(sub, "fingerprint"));
  }
  const std::string drain = client.drain();
  EXPECT_EQ(json_find(drain, "ok"), "true");
  client.close();
  EXPECT_EQ(server_->wait(), 0);  // clean drain: everything ran to completion

  exec::Journal journal(opts.journal_path);
  ASSERT_TRUE(journal.load());
  std::set<std::string> journaled;
  for (const auto& entry : journal.entries())
    journaled.insert(exec::fingerprint_hex(entry.fingerprint));
  for (const auto& fp : fingerprints)
    EXPECT_TRUE(journaled.count(fp) == 1) << "fingerprint " << fp << " not journaled";
}

TEST_F(DaemonFaultTest, CorruptJournalIsQuarantinedNotFatal) {
  ServerOptions opts = fault_options("corrupt");
  opts.journal_path = opts.socket_path + ".journal";
  {
    std::FILE* f = std::fopen(opts.journal_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a journal at all\x01\x02\n", f);
    std::fclose(f);
  }
  start(opts);  // must come up, quarantining the corrupt file
  Client client = connect();
  const std::string sub = client.submit(kTinyConfig);
  ASSERT_EQ(json_find(sub, "ok"), "true") << sub;
  const std::string res = client.wait_result(std::stoull(json_find(sub, "id")), 20'000);
  EXPECT_EQ(json_find(res, "state"), "done");
  EXPECT_TRUE(fs::exists(opts.journal_path + ".corrupt"));
}

}  // namespace
}  // namespace hem::daemon

#endif  // POSIX
