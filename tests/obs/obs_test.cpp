// Tests of the observability layer: counter/histogram/registry semantics,
// span and tracer recording, the Chrome trace_event exporter (validated
// with a small standalone JSON parser), and the core guarantee that
// enabling tracing leaves the analysis results byte-identical.

#include <gtest/gtest.h>

#include <cctype>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "obs/exporters.hpp"
#include "obs/obs.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (no external deps).  Accepts exactly the
// RFC-8259 grammar; returns false on trailing garbage.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i)
            if (pos_ + i >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Every test leaves the global observability state as it found it:
/// no tracer, counting off, all instruments zeroed.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
  static void clear() {
    set_tracer(nullptr);
    set_counting(false);
    registry().reset();
  }
};

std::string fingerprint(const cpa::AnalysisReport& report) {
  std::ostringstream os;
  os << report.format() << "\n--csv--\n";
  io::write_report_csv(os, report);
  os << "--diag--\n";
  for (const auto& d : report.diagnostics.entries())
    os << static_cast<int>(d.severity) << "|" << static_cast<int>(d.code) << "|" << d.entity
       << "|" << d.detail << "\n";
  return os.str();
}

cpa::AnalysisReport run_paper_system(int jobs = 1) {
  const auto sys = scenarios::build_paper_system({}, true);
  cpa::EngineOptions opts;
  opts.jobs = jobs;
  return cpa::CpaEngine(sys, opts).run();
}

// ---------------------------------------------------------------------------
// Counters, histograms, registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, CounterAddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add(1);
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST_F(ObsTest, HistogramStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (const long v : {4, 1, 7}) h.record(v);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 12);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 7);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  // Power-of-two buckets: 1 -> [1,2), 4 -> [4,8), 7 -> [4,8).
  EXPECT_EQ(h.bucket(1), 1);
  EXPECT_EQ(h.bucket(3), 2);
  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.bucket(3), 0);
}

TEST_F(ObsTest, HistogramZeroAndConcurrentRecords) {
  Histogram h;
  h.record(0);
  EXPECT_EQ(h.bucket(0), 1);
  EXPECT_EQ(h.min(), 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.record(5);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 4001);
  EXPECT_EQ(h.sum(), 20000);
  EXPECT_EQ(h.max(), 5);
}

TEST_F(ObsTest, RegistryReturnsStableReferencesInNameOrder) {
  Registry reg;
  Counter& a = reg.counter("b.second");
  Counter& b = reg.counter("a.first");
  EXPECT_EQ(&a, &reg.counter("b.second"));  // same name -> same instrument
  a.add(2);
  b.add(1);
  reg.histogram("h").record(3);
  std::vector<std::string> names;
  reg.for_each_counter([&](const std::string& name, const Counter& c) {
    names.push_back(name + "=" + std::to_string(c.value()));
  });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a.first=1");  // deterministic name order
  EXPECT_EQ(names[1], "b.second=2");
  reg.reset();
  EXPECT_EQ(a.value(), 0);
  long hist_count = -1;
  reg.for_each_histogram(
      [&](const std::string&, const Histogram& h) { hist_count = h.count(); });
  EXPECT_EQ(hist_count, 0);
}

#if HEM_OBS_ENABLED

TEST_F(ObsTest, BumpAndObserveAreGatedByCounting) {
  Counter& c = registry().counter("test.gated");
  Histogram& h = registry().histogram("test.gated_hist");
  bump(c);
  observe(h, 9);
  EXPECT_EQ(c.value(), 0) << "probes must be inert while counting is off";
  EXPECT_EQ(h.count(), 0);
  set_counting(true);
  bump(c, 3);
  observe(h, 9);
  EXPECT_EQ(c.value(), 3);
  EXPECT_EQ(h.count(), 1);
}

TEST_F(ObsTest, LockCountedAlwaysAcquires) {
  std::mutex mu;
  Counter& contention = registry().counter("test.contention");
  for (const bool on : {false, true}) {
    set_counting(on);
    std::unique_lock<std::mutex> lock(mu, std::defer_lock);
    lock_counted(lock, contention);
    EXPECT_TRUE(lock.owns_lock());
  }
  EXPECT_EQ(contention.value(), 0) << "uncontended locks must not count";
}

// ---------------------------------------------------------------------------
// Spans and tracer
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpanNameCallbackOnlyRunsWhenTracing) {
  bool invoked = false;
  {
    Span span("test", [&] {
      invoked = true;
      return std::string("never");
    });
    span.arg("key", "value");
  }
  EXPECT_FALSE(invoked) << "dynamic span names must cost nothing when tracing is off";

  Tracer tracer;
  set_tracer(&tracer);
  {
    Span span("test", [&] {
      invoked = true;
      return std::string("outer");
    });
    span.arg("cause", "unit-test");
    span.arg("n", 7L);
    Span inner("test", "inner");
  }
  instant("test", [] { return std::string("marker"); }, {{"k", "v"}});
  set_tracer(nullptr);

  EXPECT_TRUE(invoked);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);  // inner span completes first, then outer, then instant
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns) << "outer span starts before inner";
  ASSERT_EQ(events[1].args.size(), 2u);
  EXPECT_EQ(events[1].args[0].first, "cause");
  EXPECT_EQ(events[1].args[1].second, "7");
  EXPECT_EQ(events[2].name, "marker");
  EXPECT_EQ(events[2].phase, 'i');
}

TEST_F(ObsTest, InstallingTracerEnablesCounting) {
  EXPECT_FALSE(counting());
  Tracer tracer;
  set_tracer(&tracer);
  EXPECT_TRUE(counting());
  EXPECT_EQ(obs::tracer(), &tracer);
  set_tracer(nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST_F(ObsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\n\t"), "x\\n\\t");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  Tracer tracer;
  set_tracer(&tracer);
  {
    Span span("engine", [] { return std::string("local:\"CPU 1\"\n"); });
    span.arg("cause", "quote\"and\\slash");
  }
  registry().counter("test.count").add(5);
  set_tracer(nullptr);

  std::ostringstream os;
  write_chrome_trace(os, tracer, registry());
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter sample
  EXPECT_NE(json.find("test.count"), std::string::npos);
}

TEST_F(ObsTest, MetricsTextListsInstruments) {
  Registry reg;
  reg.counter("z.last").add(2);
  reg.counter("a.first").add(1);
  reg.histogram("steps").record(4);
  std::ostringstream os;
  write_metrics_text(os, reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("a.first 1\n"), std::string::npos);
  EXPECT_NE(text.find("z.last 2\n"), std::string::npos);
  EXPECT_NE(text.find("steps count=1 sum=4"), std::string::npos);
  EXPECT_LT(text.find("a.first"), text.find("z.last"));  // name order
}

// ---------------------------------------------------------------------------
// Engine integration: tracing must not change results
// ---------------------------------------------------------------------------

TEST_F(ObsTest, TracingLeavesAnalysisByteIdentical) {
  const std::string baseline = fingerprint(run_paper_system());

  Tracer tracer;
  set_tracer(&tracer);
  const std::string traced = fingerprint(run_paper_system());
  set_tracer(nullptr);
  EXPECT_EQ(baseline, traced);

  set_counting(true);
  const std::string counted = fingerprint(run_paper_system(4));
  EXPECT_EQ(baseline, counted);
}

TEST_F(ObsTest, EngineEmitsResourceSpansAndCacheCounters) {
  Tracer tracer;
  set_tracer(&tracer);
  (void)run_paper_system();
  set_tracer(nullptr);

  bool saw_run = false, saw_iteration = false, saw_local = false, saw_converged = false;
  std::string local_cause;
  for (const auto& ev : tracer.snapshot()) {
    if (ev.name == "CpaEngine::run") saw_run = true;
    if (ev.name == "iteration") saw_iteration = true;
    if (ev.name.rfind("local:", 0) == 0) {
      saw_local = true;
      for (const auto& [k, v] : ev.args)
        if (k == "cause") local_cause = v;
    }
    if (ev.name == "converged") saw_converged = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_iteration);
  EXPECT_TRUE(saw_local);
  EXPECT_TRUE(saw_converged);
  EXPECT_FALSE(local_cause.empty()) << "local-analysis spans must carry their dirty cause";

  EXPECT_GT(registry().counter("engine.cache.hit").value() +
                registry().counter("engine.cache.miss").value(),
            0)
      << "delta-cache probes should fire during the analysis";
  EXPECT_GT(registry().counter("sched.busy_window.fixpoint_steps").value(), 0);
  EXPECT_GT(registry().counter("engine.local_analyses_run").value(), 0);
}

#endif  // HEM_OBS_ENABLED

}  // namespace
}  // namespace hem::obs
