#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"
#include "model/cpa_engine.hpp"

namespace hem::io {
namespace {

TEST(CsvTest, TraceRoundTrips) {
  const std::array<Time, 5> trace{0, 10, 10, 35, 1000};
  std::stringstream buf;
  write_trace_csv(buf, trace);
  const auto back = read_trace_csv(buf);
  EXPECT_EQ(back, std::vector<Time>(trace.begin(), trace.end()));
}

TEST(CsvTest, TraceReaderSkipsCommentsAndBlanks) {
  std::istringstream in("# header\n  5\n\n 10 # inline\n#only comment\n15\n");
  EXPECT_EQ(read_trace_csv(in), (std::vector<Time>{5, 10, 15}));
}

TEST(CsvTest, TraceReaderRejectsGarbage) {
  std::istringstream in("5\nbanana\n");
  EXPECT_THROW(read_trace_csv(in), std::invalid_argument);
  std::istringstream in2("5\n1 2\n");
  EXPECT_THROW(read_trace_csv(in2), std::invalid_argument);
}

TEST(CsvTest, TraceFeedsTraceModel) {
  std::istringstream in("0\n100\n200\n300\n");
  const TraceModel model(read_trace_csv(in));
  EXPECT_EQ(model.delta_min(2), 100);
  EXPECT_EQ(model.delta_plus(4), 300);
}

TEST(CsvTest, ReportCsvHasHeaderAndRows) {
  cpa::System sys;
  const auto cpu = sys.add_resource({"cpu", cpa::Policy::kSppPreemptive});
  const auto t = sys.add_task({"worker", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_external(t, StandardEventModel::periodic(100));
  const auto report = cpa::CpaEngine(sys).run();

  std::ostringstream os;
  write_report_csv(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("task,resource,bcrt,wcrt"), std::string::npos);
  EXPECT_NE(text.find(",status"), std::string::npos);
  EXPECT_NE(text.find("worker,cpu,5,5,"), std::string::npos);
  EXPECT_NE(text.find(",converged"), std::string::npos);
}

TEST(CsvTest, ReportCsvPrintsDegradedStatusAndInfinity) {
  // An overloaded resource: graceful analysis emits fallback rows with
  // "inf" bounds and the overloaded status in the final column.
  cpa::System sys;
  const auto cpu = sys.add_resource({"cpu", cpa::Policy::kSppPreemptive});
  const auto t = sys.add_task({"worker", cpu, 1, sched::ExecutionTime(120)});
  sys.activate_external(t, StandardEventModel::periodic(100));
  const auto report = cpa::CpaEngine(sys).run();

  std::ostringstream os;
  write_report_csv(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find(",inf,"), std::string::npos) << text;
  EXPECT_NE(text.find(",overloaded"), std::string::npos) << text;
}

TEST(CsvTest, FieldQuotingFollowsRfc4180) {
  EXPECT_EQ(csv_field("plain"), "plain");
  EXPECT_EQ(csv_field(""), "");
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(csv_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvTest, ReportCsvQuotesCommaBearingNames) {
  // Task and resource names with CSV metacharacters must round-trip as one
  // field each, not shift the columns of every row after them.
  cpa::System sys;
  const auto cpu = sys.add_resource({"cpu,0 \"main\"", cpa::Policy::kSppPreemptive});
  const auto t = sys.add_task({"worker,a", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_external(t, StandardEventModel::periodic(100));
  const auto report = cpa::CpaEngine(sys).run();

  std::ostringstream os;
  write_report_csv(os, report);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"worker,a\",\"cpu,0 \"\"main\"\"\","), std::string::npos) << text;

  // Parse the data row back with a minimal RFC-4180 reader: the row must
  // split into exactly the 8 header columns.
  const auto row_start = text.find('\n') + 1;
  const std::string row = text.substr(row_start, text.find('\n', row_start) - row_start);
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const char c = row[i];
    if (quoted) {
      if (c == '"' && i + 1 < row.size() && row[i + 1] == '"') {
        cur += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  ASSERT_EQ(fields.size(), 8u) << row;
  EXPECT_EQ(fields[0], "worker,a");
  EXPECT_EQ(fields[1], "cpu,0 \"main\"");
}

TEST(CsvTest, ReportCsvUtilizationHasFixedPrecision) {
  cpa::System sys;
  const auto cpu = sys.add_resource({"cpu", cpa::Policy::kSppPreemptive});
  const auto t = sys.add_task({"worker", cpu, 1, sched::ExecutionTime(5)});
  sys.activate_external(t, StandardEventModel::periodic(100));
  const auto report = cpa::CpaEngine(sys).run();

  std::ostringstream os;
  write_report_csv(os, report);
  // utilization = 5/100, rendered with exactly six decimals (never
  // scientific notation or 6-significant-digit rounding).
  EXPECT_NE(os.str().find(",0.050000,"), std::string::npos) << os.str();
}

TEST(CsvTest, DeltaCsvPrintsInfinity) {
  // A pending-style curve has infinite delta+.
  std::ostringstream os;
  class InfPlus final : public EventModel {
   public:
    [[nodiscard]] std::string describe() const override { return "x"; }

   protected:
    [[nodiscard]] Time delta_min_raw(Count n) const override { return 10 * (n - 1); }
    [[nodiscard]] Time delta_plus_raw(Count) const override { return kTimeInfinity; }
  };
  write_delta_csv(os, InfPlus{}, 3);
  EXPECT_EQ(os.str(), "n,delta_min,delta_plus\n2,10,inf\n3,20,inf\n");
}

}  // namespace
}  // namespace hem::io
