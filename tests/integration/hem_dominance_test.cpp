// Broad property sweep: on many variants of the paper system, the
// hierarchical analysis must (a) converge whenever the flat analysis
// converges, (b) never report a larger WCRT for any receiver, and (c) keep
// every unpacked eta+ below the flat total-frame eta+.  This guards the
// paper's headline claim against regressions anywhere in the stack.

#include <gtest/gtest.h>

#include "core/errors.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::scenarios {
namespace {

struct SweepCase {
  const char* label;
  PaperSystemParams params;
};

PaperSystemParams base() { return PaperSystemParams{}; }

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  cases.push_back({"paper", base()});

  {
    auto p = base();
    p.s1_jitter = 100;
    p.s2_jitter = 200;
    cases.push_back({"jittered-triggers", p});
  }
  {
    auto p = base();
    p.s3_jitter = 900;
    cases.push_back({"jittered-pending", p});
  }
  {
    auto p = base();
    p.s1_period = 150;
    p.s2_period = 300;
    cases.push_back({"faster-sources", p});
  }
  {
    auto p = base();
    p.t1_cet = 40;
    p.t2_cet = 50;
    p.t3_cet = 60;
    cases.push_back({"heavier-tasks", p});
  }
  {
    auto p = base();
    p.f1_time = 12;
    p.f2_time = 8;
    cases.push_back({"slower-bus", p});
  }
  {
    auto p = base();
    p.s1_period = 500;
    p.s2_period = 900;
    p.s3_period = 2000;
    cases.push_back({"slower-sources", p});
  }
  {
    auto p = base();
    p.s1_jitter = 300;  // burst: two S1 events can coincide
    cases.push_back({"bursty-s1", p});
  }
  return cases;
}

class HemDominance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HemDominance, HemNeverWorseThanFlat) {
  const SweepCase c = sweep_cases()[GetParam()];
  PaperSystemResults results;
  try {
    results = analyze_paper_system(c.params);
  } catch (const AnalysisError& e) {
    // If the flat abstraction overloads, the hierarchical analysis alone
    // must still succeed.
    const auto hem_only =
        cpa::CpaEngine(build_paper_system(c.params, true)).run();
    EXPECT_TRUE(hem_only.converged) << c.label;
    return;
  }
  for (const auto& row : results.table3) {
    EXPECT_LE(row.wcrt_hem, row.wcrt_flat) << c.label << " " << row.task;
    EXPECT_GE(row.wcrt_hem, 0) << c.label << " " << row.task;
  }
  for (std::size_t i = 0; i < results.f1_unpacked.size(); ++i) {
    for (Time dt = 100; dt <= 4000; dt += 100) {
      ASSERT_LE(results.f1_unpacked[i]->eta_plus(dt), results.f1_total->eta_plus(dt))
          << c.label << " inner " << i << " dt=" << dt;
    }
  }
}

TEST_P(HemDominance, HemCurvesStayWellFormed) {
  const SweepCase c = sweep_cases()[GetParam()];
  const auto report = cpa::CpaEngine(build_paper_system(c.params, true)).run();
  for (const char* task : {"T1", "T2", "T3"}) {
    const auto& m = report.task(task).activation;
    for (Count n = 3; n <= 32; ++n) {
      ASSERT_LE(m->delta_min(n - 1), m->delta_min(n)) << c.label << " " << task;
      ASSERT_LE(m->delta_min(n), m->delta_plus(n)) << c.label << " " << task;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HemDominance, ::testing::Range<std::size_t>(0, 7));

}  // namespace
}  // namespace hem::scenarios
