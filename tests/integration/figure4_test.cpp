#include <gtest/gtest.h>

#include <algorithm>

#include "core/model_io.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::scenarios {
namespace {

/// Reproduces the qualitative content of the paper's Figure 4: eta+ of the
/// total F1 output stream vs. the unpacked input streams of T1, T2, T3.

class Figure4 : public ::testing::Test {
 protected:
  static const PaperSystemResults& results() {
    static const PaperSystemResults r = analyze_paper_system();
    return r;
  }
};

TEST_F(Figure4, SeriesOrderingMatchesThePaper) {
  // At every sampled dt: total frame arrivals >= T1 >= T2 >= T3 activations
  // (T1 has the fastest source, T3 the slowest).
  const auto& total = results().f1_total;
  const auto& t1 = results().f1_unpacked[0];
  const auto& t2 = results().f1_unpacked[1];
  const auto& t3 = results().f1_unpacked[2];
  for (Time dt = 100; dt <= 4000; dt += 100) {
    EXPECT_GE(total->eta_plus(dt), t1->eta_plus(dt)) << dt;
    EXPECT_GE(t1->eta_plus(dt), t2->eta_plus(dt)) << dt;
    EXPECT_GE(t2->eta_plus(dt), t3->eta_plus(dt)) << dt;
  }
}

TEST_F(Figure4, LongRunRatesMatchSourcePeriods) {
  // Over a long window the unpacked streams converge to the source rates.
  const Time window = 90'000;
  const auto& t1 = results().f1_unpacked[0];
  const auto& t2 = results().f1_unpacked[1];
  const auto& t3 = results().f1_unpacked[2];
  EXPECT_NEAR(static_cast<double>(t1->eta_plus(window)), 90'000.0 / 250.0, 2.0);
  EXPECT_NEAR(static_cast<double>(t2->eta_plus(window)), 90'000.0 / 450.0, 2.0);
  EXPECT_NEAR(static_cast<double>(t3->eta_plus(window)), 90'000.0 / 1000.0, 2.0);
  // Total frame arrivals: the sum of the triggering rates.
  EXPECT_NEAR(static_cast<double>(results().f1_total->eta_plus(window)),
              90'000.0 / 250.0 + 90'000.0 / 450.0, 3.0);
}

TEST_F(Figure4, TotalIsSubstantiallyAboveEachUnpackedSeries) {
  // The overestimation the paper highlights: at dt = 2000 the total frame
  // stream shows roughly 14 arrivals while T3's unpacked stream shows ~3.
  const Time dt = 2000;
  const Count total = results().f1_total->eta_plus(dt);
  const Count t3 = results().f1_unpacked[2]->eta_plus(dt);
  EXPECT_GE(total, 3 * t3);
}

TEST_F(Figure4, SampledSeriesAreWellFormedForPlotting) {
  std::vector<EtaSeries> series;
  series.push_back(sample_eta_plus(*results().f1_total, "F1", 4000, 100));
  const char* names[] = {"T1", "T2", "T3"};
  for (std::size_t i = 0; i < 3; ++i)
    series.push_back(sample_eta_plus(*results().f1_unpacked[i], names[i], 4000, 100));
  const std::string table = format_eta_table(series);
  EXPECT_NE(table.find("F1"), std::string::npos);
  EXPECT_NE(table.find("T3"), std::string::npos);
  // 40 sample rows + header.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 41);
}

}  // namespace
}  // namespace hem::scenarios
