// Randomised FULL-STACK validation: generate random systems (sources,
// packed frames on a CAN bus, unpacked receivers plus chained tasks on two
// CPUs), analyse them with the engine, execute them with the generic
// system simulator, and check every observed response against the analytic
// worst case.  One generator covers packing, inner updates, unpacking, OR
// chains and both scheduler kinds at once.

#include <gtest/gtest.h>

#include <random>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "sim/system_simulator.hpp"

namespace hem::sim {
namespace {

using cpa::Policy;
using cpa::System;
using cpa::TaskId;

System random_system(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> n_frames_dist(1, 3);
  std::uniform_int_distribution<int> n_signals_dist(1, 3);
  std::uniform_int_distribution<Time> period_dist(150, 900);
  std::uniform_int_distribution<Time> jitter_dist(0, 120);
  std::uniform_int_distribution<Time> frame_time_dist(2, 8);
  std::uniform_int_distribution<int> coupling_dist(0, 3);

  System sys;
  const auto bus = sys.add_resource({"bus", Policy::kSpnpCan});
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});

  int cpu_prio = 1;
  const int n_frames = n_frames_dist(rng);
  std::vector<TaskId> receivers;
  for (int f = 0; f < n_frames; ++f) {
    const int n_signals = n_signals_dist(rng);
    std::vector<cpa::PackedActivation::Input> inputs;
    bool any_trigger = false;
    for (int s = 0; s < n_signals; ++s) {
      const bool trigger = coupling_dist(rng) != 0 || (s == n_signals - 1 && !any_trigger);
      any_trigger |= trigger;
      inputs.push_back({StandardEventModel::sporadic(period_dist(rng), jitter_dist(rng), 0),
                        trigger ? SignalCoupling::kTriggering : SignalCoupling::kPending});
    }
    const TaskId frame = sys.add_task(
        {"F" + std::to_string(f), bus, f + 1, sched::ExecutionTime(frame_time_dist(rng))});
    sys.activate_packed(frame, std::move(inputs));

    for (int s = 0; s < n_signals; ++s) {
      const TaskId rx = sys.add_task({"rx_" + std::to_string(f) + "_" + std::to_string(s),
                                      cpu1, cpu_prio++,
                                      sched::ExecutionTime(1 + (cpu_prio % 7))});
      sys.activate_unpacked(rx, frame, static_cast<std::size_t>(s));
      receivers.push_back(rx);
    }
  }
  // A second-stage task on cpu2, OR-activated by up to three receivers.
  std::vector<TaskId> producers;
  for (std::size_t i = 0; i < receivers.size() && i < 3; ++i)
    producers.push_back(receivers[i]);
  const TaskId sink = sys.add_task({"sink", cpu2, 1, sched::ExecutionTime(3)});
  sys.activate_by(sink, producers);
  return sys;
}

class RandomFullStack : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomFullStack, SimWithinAnalyticBounds) {
  std::mt19937_64 rng(GetParam());
  const System sys = random_system(rng);

  cpa::AnalysisReport report;
  try {
    report = cpa::CpaEngine(sys).run();
  } catch (const AnalysisError&) {
    GTEST_SKIP() << "random instance overloaded";
  }

  for (const auto mode : {GenMode::kEarliest, GenMode::kRandom}) {
    SystemSimulator::Options opts;
    opts.horizon = 150'000;
    opts.mode = mode;
    opts.seed = GetParam() * 1000 + static_cast<std::uint64_t>(mode);
    const auto sim = SystemSimulator(sys, opts).run();
    for (const auto& task : report.tasks) {
      const auto& stats = sim.tasks.at(task.name);
      ASSERT_LE(stats.wcrt, task.wcrt)
          << "seed=" << GetParam() << " mode=" << static_cast<int>(mode)
          << " task=" << task.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFullStack, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace hem::sim
