// System-level validation: the SAME cpa::System object is analysed by the
// engine and executed by the generic system simulator; every observed
// response must stay within the analytic worst case.  This covers the
// whole stack at once: packing, CAN arbitration, inner updates, unpacking,
// chained CPUs, OR junctions.

#include "sim/system_simulator.hpp"

#include <gtest/gtest.h>

#include "core/delta_function_model.hpp"
#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "scenarios/body_network.hpp"
#include "scenarios/paper_system.hpp"

namespace hem::sim {
namespace {

using hem::DeltaFunctionModel;
using hem::StandardEventModel;

void expect_within_bounds(const cpa::AnalysisReport& report, const SystemSimResult& sim,
                          const std::string& context) {
  for (const auto& task : report.tasks) {
    const auto it = sim.tasks.find(task.name);
    ASSERT_NE(it, sim.tasks.end()) << context << " " << task.name;
    EXPECT_LE(it->second.wcrt, task.wcrt) << context << " " << task.name;
  }
}

class SystemSimModes
    : public ::testing::TestWithParam<std::tuple<GenMode, std::uint64_t>> {};

TEST_P(SystemSimModes, PaperSystemWithinBounds) {
  const auto [mode, seed] = GetParam();
  const auto sys = scenarios::build_paper_system({}, /*hierarchical=*/true);
  const auto report = cpa::CpaEngine(sys).run();

  SystemSimulator::Options opts;
  opts.horizon = 300'000;
  opts.mode = mode;
  opts.seed = seed;
  const auto sim = SystemSimulator(sys, opts).run();
  expect_within_bounds(report, sim, "paper");
  // Sanity: everything actually ran.
  EXPECT_GT(sim.tasks.at("T1").responses.size(), 1000u);
  EXPECT_GT(sim.tasks.at("F1").responses.size(), 1500u);
}

TEST_P(SystemSimModes, BodyNetworkWithinBounds) {
  const auto [mode, seed] = GetParam();
  const auto sys = scenarios::build_body_network({});
  const auto report = cpa::CpaEngine(sys).run();

  SystemSimulator::Options opts;
  opts.horizon = 400'000;
  opts.mode = mode;
  opts.seed = seed;
  const auto sim = SystemSimulator(sys, opts).run();
  expect_within_bounds(report, sim, "body");
  // The two-hop forwarded signal reached the dashboard.
  EXPECT_GT(sim.tasks.at("dash_wheel").responses.size(), 100u);
  EXPECT_GT(sim.tasks.at("dash_temp").responses.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, SystemSimModes,
    ::testing::Values(std::tuple{GenMode::kNominal, std::uint64_t{1}},
                      std::tuple{GenMode::kEarliest, std::uint64_t{1}},
                      std::tuple{GenMode::kRandom, std::uint64_t{1}},
                      std::tuple{GenMode::kRandom, std::uint64_t{9}},
                      std::tuple{GenMode::kRandom, std::uint64_t{23}}));

TEST(SystemSimTest, UnsupportedPolicyRejected) {
  cpa::System sys;
  const auto rr = sys.add_resource({"rr", cpa::Policy::kRoundRobin});
  cpa::TaskSpec t{"t", rr, 0, sched::ExecutionTime(1)};
  t.slot = 1;
  const auto id = sys.add_task(t);
  sys.activate_external(id, StandardEventModel::periodic(10));
  SystemSimulator simulator(sys, {});
  EXPECT_THROW(simulator.run(), std::invalid_argument);
}

TEST(SystemSimTest, NonSemExternalRejected) {
  cpa::System sys;
  const auto cpu = sys.add_resource({"cpu", cpa::Policy::kSppPreemptive});
  const auto id = sys.add_task({"t", cpu, 0, sched::ExecutionTime(1)});
  sys.activate_external(id, DeltaFunctionModel::periodic_burst(2, 5, 100));
  SystemSimulator simulator(sys, {});
  EXPECT_THROW(simulator.run(), std::invalid_argument);
}

TEST(SystemSimTest, AndJunctionFiresOncePerTokenSet) {
  cpa::System sys;
  const auto cpu1 = sys.add_resource({"cpu1", cpa::Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", cpa::Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(1)});
  const auto b = sys.add_task({"b", cpu1, 2, sched::ExecutionTime(2)});
  const auto j = sys.add_task({"j", cpu2, 1, sched::ExecutionTime(3)});
  sys.activate_external(a, StandardEventModel::periodic(100));
  sys.activate_external(b, StandardEventModel::periodic(100));
  sys.activate_and(j, {a, b}, 100);

  SystemSimulator::Options opts;
  opts.horizon = 100'000;
  opts.mode = GenMode::kNominal;
  const auto sim = SystemSimulator(sys, opts).run();
  // One join per period: ~1000 activations, equal to a's count.
  EXPECT_NEAR(static_cast<double>(sim.tasks.at("j").activations.size()),
              static_cast<double>(sim.tasks.at("a").activations.size()), 2.0);
  // And within the analytic bound.
  const auto report = cpa::CpaEngine(sys).run();
  EXPECT_LE(sim.tasks.at("j").wcrt, report.task("j").wcrt);
}

}  // namespace
}  // namespace hem::sim
