// Round-trip tests for the synth serialiser (scenarios::to_config_text):
// synthesise a system, render it to the textual .hemcpa format, parse the
// text back, and require the reconstructed system's analysis report to be
// bit-identical (verify::report_fingerprint) to the original's.  Covers
// the plain regime and the packed/hierarchical regime, deadline emission,
// and rejection of systems the format cannot express.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/trace_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/textual_config.hpp"
#include "scenarios/synth.hpp"
#include "verify/differential.hpp"

namespace hem::cpa {
namespace {

std::uint64_t run_fingerprint(const System& sys) {
  EngineOptions opts;
  opts.jobs = 1;
  opts.max_iterations = 64;
  return verify::report_fingerprint(CpaEngine(sys, opts).run());
}

scenarios::SynthParams small_params(std::uint64_t seed, int packed_permille = 0) {
  scenarios::SynthParams p;
  p.resources = 6;
  p.tasks = 24;
  p.layers = 3;
  p.seed = seed;
  p.packed_permille = packed_permille;
  return p;
}

TEST(SynthRoundtripTest, PlainSystemsRoundTripBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const System original = scenarios::build_synth_system(small_params(seed));
    const std::string text = scenarios::to_config_text(original);
    std::istringstream in(text);
    const ParsedSystem parsed = parse_system_config(in);
    EXPECT_EQ(run_fingerprint(original), run_fingerprint(parsed.system))
        << "seed " << seed << " round-trip changed the analysis\n"
        << text;
  }
}

TEST(SynthRoundtripTest, PackedSystemsRoundTripBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const System original = scenarios::build_synth_system(small_params(seed, 400));
    const std::string text = scenarios::to_config_text(original);
    std::istringstream in(text);
    const ParsedSystem parsed = parse_system_config(in);
    EXPECT_EQ(run_fingerprint(original), run_fingerprint(parsed.system))
        << "seed " << seed << " (packed) round-trip changed the analysis\n"
        << text;
  }
}

TEST(SynthRoundtripTest, TimeDrivenSystemsRoundTripBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    scenarios::SynthParams p = small_params(seed);
    p.resources = 8;  // wide enough for the modulo walk to hit both policies
    p.tasks = 32;
    p.tdma_permille = 300;
    p.rr_permille = 300;
    const System original = scenarios::build_synth_system(p);
    const std::string text = scenarios::to_config_text(original);
    std::istringstream in(text);
    const ParsedSystem parsed = parse_system_config(in);
    EXPECT_EQ(run_fingerprint(original), run_fingerprint(parsed.system))
        << "seed " << seed << " (tdma/rr) round-trip changed the analysis\n"
        << text;
  }
}

TEST(SynthRoundtripTest, SerialisedTextIsStableAcrossCalls) {
  const System sys = scenarios::build_synth_system(small_params(7, 400));
  EXPECT_EQ(scenarios::to_config_text(sys), scenarios::to_config_text(sys));
}

TEST(SynthRoundtripTest, DeadlinesSurviveTheRoundTrip) {
  const System sys = scenarios::build_synth_system(small_params(2));
  const std::string first = sys.tasks()[0].name;
  const std::string fourth = sys.tasks()[3].name;
  DeadlineMap deadlines;
  deadlines[first] = 5000;
  deadlines[fourth] = 12345;
  const std::string text = scenarios::to_config_text(sys, deadlines);
  std::istringstream in(text);
  const ParsedSystem parsed = parse_system_config(in);
  ASSERT_EQ(parsed.deadlines.size(), 2u);
  ASSERT_TRUE(parsed.deadlines.count(first));
  ASSERT_TRUE(parsed.deadlines.count(fourth));
  EXPECT_EQ(parsed.deadlines.at(first), 5000);
  EXPECT_EQ(parsed.deadlines.at(fourth), 12345);
}

TEST(SynthRoundtripTest, DeadlineForUnknownTaskThrows) {
  const System sys = scenarios::build_synth_system(small_params(2));
  DeadlineMap deadlines;
  deadlines["no_such_task"] = 100;
  EXPECT_THROW((void)scenarios::to_config_text(sys, deadlines),
               std::invalid_argument);
}

TEST(SynthRoundtripTest, InexpressibleExternalModelThrows) {
  System sys = scenarios::build_synth_system(small_params(2));
  // Trace models have no `source` statement form; the serialiser must
  // refuse rather than emit something that parses into a different system.
  const auto trace = std::make_shared<TraceModel>(std::vector<Time>{0, 40, 90, 500});
  for (TaskId t = 0; t < sys.tasks().size(); ++t) {
    sys.rewrite_external_models(t, [&](const ModelPtr&) { return trace; });
  }
  EXPECT_THROW((void)scenarios::to_config_text(sys), std::invalid_argument);
}

TEST(SynthRoundtripTest, SharedSourcesAreDeclaredOnce) {
  const System sys = scenarios::build_synth_system(small_params(4));
  const std::string text = scenarios::to_config_text(sys);
  // Count `source ` declarations vs distinct external model nodes: shared
  // nodes must not be duplicated (one declaration, many references).
  std::set<const EventModel*> distinct;
  for (TaskId t = 0; t < sys.tasks().size(); ++t) {
    if (const auto* ext = std::get_if<ExternalActivation>(&sys.activation(t))) {
      distinct.insert(ext->model.get());
    }
  }
  int declared = 0;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("source ", 0) == 0) ++declared;
  }
  EXPECT_EQ(declared, static_cast<int>(distinct.size()));
}

}  // namespace
}  // namespace hem::cpa
