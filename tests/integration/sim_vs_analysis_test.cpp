#include <gtest/gtest.h>

#include "scenarios/paper_system.hpp"
#include "sim/simulator.hpp"
#include "sim/system_simulator.hpp"
#include "sim/trace_check.hpp"

namespace hem::scenarios {
namespace {

/// The simulator is an independent implementation; every observed behaviour
/// must stay within the analytic bounds (for all generation modes/seeds).

class SimVsAnalysis : public ::testing::TestWithParam<std::tuple<sim::GenMode, std::uint64_t>> {
 protected:
  static const PaperSystemResults& analysis() {
    static const PaperSystemResults r = analyze_paper_system();
    return r;
  }
};

TEST_P(SimVsAnalysis, ObservedResponsesWithinAnalyticWcrt) {
  const auto [mode, seed] = GetParam();
  const auto cfg = make_paper_sim_config({}, 200'000, mode, seed);
  const auto result = sim::Simulator(cfg).run();
  for (const char* task : {"T1", "T2", "T3"}) {
    const auto& stats = result.tasks.at(task);
    ASSERT_FALSE(stats.responses.empty()) << task;
    EXPECT_LE(stats.wcrt, analysis().hem.task(task).wcrt) << task;
  }
}

TEST_P(SimVsAnalysis, ObservedFrameStreamWithinAnalyticOutput) {
  const auto [mode, seed] = GetParam();
  const auto cfg = make_paper_sim_config({}, 200'000, mode, seed);
  const auto result = sim::Simulator(cfg).run();
  // F1 completions must conform to the analytic F1 output stream (delta+
  // not checked: the analysis bounds it only while frames keep flowing,
  // and eta+/delta- are the load-relevant directions).
  const auto violations = sim::check_trace_against_model(
      result.frame_completions.at("F1"), *analysis().hem.task("F1").output, 5000, 61, 48,
      /*check_delta_plus=*/false);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST_P(SimVsAnalysis, ObservedTaskActivationsWithinUnpackedModels) {
  const auto [mode, seed] = GetParam();
  const auto cfg = make_paper_sim_config({}, 200'000, mode, seed);
  const auto result = sim::Simulator(cfg).run();
  const char* tasks[] = {"T1", "T2", "T3"};
  for (std::size_t i = 0; i < 3; ++i) {
    const auto violations = sim::check_trace_against_model(
        result.tasks.at(tasks[i]).activations, *analysis().hem.task(tasks[i]).activation, 5000,
        61, 48, /*check_delta_plus=*/false);
    EXPECT_TRUE(violations.empty()) << tasks[i] << ": " << violations.front();
  }
}

TEST_P(SimVsAnalysis, SignalDeliveriesMatchTaskActivations) {
  const auto [mode, seed] = GetParam();
  const auto cfg = make_paper_sim_config({}, 100'000, mode, seed);
  const auto result = sim::Simulator(cfg).run();
  EXPECT_EQ(result.signal_deliveries.at("F1.s1"), result.tasks.at("T1").activations);
  EXPECT_EQ(result.signal_deliveries.at("F1.s3"), result.tasks.at("T3").activations);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, SimVsAnalysis,
    ::testing::Values(std::tuple{sim::GenMode::kNominal, std::uint64_t{1}},
                      std::tuple{sim::GenMode::kEarliest, std::uint64_t{1}},
                      std::tuple{sim::GenMode::kRandom, std::uint64_t{1}},
                      std::tuple{sim::GenMode::kRandom, std::uint64_t{7}},
                      std::tuple{sim::GenMode::kRandom, std::uint64_t{42}}));

TEST(SimVsAnalysisExtra, JitteredSystemStillBounded) {
  PaperSystemParams p;
  p.s1_jitter = 60;
  p.s2_jitter = 100;
  p.s3_jitter = 150;
  const auto analysis = analyze_paper_system(p);
  for (std::uint64_t seed : {3u, 11u}) {
    const auto cfg = make_paper_sim_config(p, 150'000, sim::GenMode::kRandom, seed);
    const auto result = sim::Simulator(cfg).run();
    for (const char* task : {"T1", "T2", "T3"})
      EXPECT_LE(result.tasks.at(task).wcrt, analysis.hem.task(task).wcrt) << task;
  }
}

TEST(SimVsAnalysisExtra, SimulatedWcrtApproachesAnalyticBoundForT1) {
  // For the highest-priority receiver the bound (its CET) is exact.
  const auto cfg = make_paper_sim_config({}, 100'000, sim::GenMode::kEarliest, 1);
  const auto result = sim::Simulator(cfg).run();
  EXPECT_EQ(result.tasks.at("T1").wcrt, 24);
}

TEST(FaultInjectionDominance, DroppedFramesStayWithinHealthyBounds) {
  // Dropping stimuli only removes load, so the analytic bounds of the
  // healthy system must still dominate every observed response.
  const auto sys = build_paper_system({}, /*hierarchical=*/true);
  const auto report = cpa::CpaEngine(sys).run();
  ASSERT_FALSE(report.degraded());
  for (const double drop : {0.1, 0.5}) {
    for (const std::uint64_t seed : {1u, 17u}) {
      sim::SystemSimulator::Options opts;
      opts.horizon = 200'000;
      opts.mode = sim::GenMode::kRandom;
      opts.seed = seed;
      opts.faults.drop_rate = drop;
      const auto result = sim::SystemSimulator(sys, opts).run();
      for (const auto& t : report.tasks) {
        EXPECT_LE(result.tasks.at(t.name).wcrt, t.wcrt)
            << t.name << " drop=" << drop << " seed=" << seed;
      }
    }
  }
}

TEST(FaultInjectionDominance, DegradedBoundsDominateBurstyOverload) {
  // Inflate the CPU1 CETs until the resource is overloaded: the graceful
  // analysis reports fallback bounds (infinite for CPU1 tasks).  Then hit
  // the simulated system with adversarial faults (bursty duplicated frames
  // plus extra jitter) - observed responses must still stay below the
  // degraded bounds, which is what "conservative fallback" promises.
  PaperSystemParams p;
  p.t1_cet = 150;
  p.t2_cet = 200;
  p.t3_cet = 300;
  const auto sys = build_paper_system(p, /*hierarchical=*/true);
  const auto report = cpa::CpaEngine(sys).run();
  EXPECT_TRUE(report.degraded());
  EXPECT_TRUE(report.diagnostics.has_errors());
  bool any_overloaded = false;
  for (const auto& t : report.tasks)
    any_overloaded = any_overloaded || t.status == cpa::TaskStatus::kOverloaded;
  EXPECT_TRUE(any_overloaded);

  sim::SystemSimulator::Options opts;
  opts.horizon = 150'000;
  opts.mode = sim::GenMode::kEarliest;
  opts.seed = 5;
  opts.faults.extra_jitter = 40;
  opts.faults.burst = 2;
  const auto result = sim::SystemSimulator(sys, opts).run();
  // Converged tasks are exempt: the injected faults exceed their declared
  // event models, so only the degraded (fallback) bounds must dominate.
  for (const auto& t : report.tasks) {
    if (!t.degraded()) continue;
    EXPECT_LE(result.tasks.at(t.name).wcrt, t.wcrt) << t.name;
  }
}

}  // namespace
}  // namespace hem::scenarios
