// Multi-hop stream hierarchies: frames unpacked at a gateway and repacked
// onto a second bus.  Checks that hierarchical models survive arbitrary
// operation chains soundly.

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/system.hpp"
#include "sched/can_bus.hpp"
#include "sched/spp.hpp"

namespace hem::cpa {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

System build_gateway(Time fast_period, Time slow_period) {
  System sys;
  const auto can_a = sys.add_resource({"CAN_A", Policy::kSpnpCan});
  const auto can_b = sys.add_resource({"CAN_B", Policy::kSpnpCan});
  const auto gw = sys.add_resource({"GW", Policy::kSppPreemptive});
  const auto ecu = sys.add_resource({"ECU", Policy::kSppPreemptive});

  const auto fa = sys.add_task({"FA", can_a, 1, sched::ExecutionTime(4)});
  sys.activate_packed(fa, {{periodic(fast_period), SignalCoupling::kTriggering},
                           {periodic(slow_period), SignalCoupling::kPending}});

  const auto gw_fast = sys.add_task({"gw_fast", gw, 1, sched::ExecutionTime(5, 8)});
  const auto gw_slow = sys.add_task({"gw_slow", gw, 2, sched::ExecutionTime(6, 12)});
  sys.activate_unpacked(gw_fast, fa, 0);
  sys.activate_unpacked(gw_slow, fa, 1);

  const auto fb = sys.add_task({"FB", can_b, 1, sched::ExecutionTime(5)});
  sys.activate_packed(fb, {{gw_fast, SignalCoupling::kTriggering},
                           {gw_slow, SignalCoupling::kPending}});

  const auto rx_fast = sys.add_task({"rx_fast", ecu, 1, sched::ExecutionTime(10)});
  const auto rx_slow = sys.add_task({"rx_slow", ecu, 2, sched::ExecutionTime(30)});
  sys.activate_unpacked(rx_fast, fb, 0);
  sys.activate_unpacked(rx_slow, fb, 1);
  return sys;
}

TEST(GatewayTest, TwoHopSystemConverges) {
  const auto report = CpaEngine(build_gateway(200, 1500)).run();
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.iterations, 2);  // feed-forward depth needs > 2 rounds
}

TEST(GatewayTest, FinalReceiversSeePerSignalRates) {
  const auto report = CpaEngine(build_gateway(200, 1500)).run();
  // rx_fast ~ once per 200 ticks, rx_slow ~ once per 1500 ticks, FB frames
  // ~ once per 200 (only the fast stream triggers FB).
  EXPECT_NEAR(static_cast<double>(report.task("rx_fast").activation->eta_plus(30'000)),
              30'000.0 / 200.0, 3.0);
  EXPECT_NEAR(static_cast<double>(report.task("rx_slow").activation->eta_plus(30'000)),
              30'000.0 / 1500.0, 3.0);
}

TEST(GatewayTest, JitterAccumulatesAcrossHops) {
  const auto report = CpaEngine(build_gateway(200, 1500)).run();
  // Each hop widens the fast stream's delta window.
  const Time source_gap = 200;
  const Time after_gw = report.task("gw_fast").output->delta_min(2);
  const Time at_rx = report.task("rx_fast").activation->delta_min(2);
  EXPECT_LT(after_gw, source_gap);
  EXPECT_LE(at_rx, after_gw);
  EXPECT_GT(at_rx, 0);
}

TEST(GatewayTest, PendingStaysPendingThroughRepacking) {
  const auto report = CpaEngine(build_gateway(200, 1500)).run();
  EXPECT_TRUE(is_infinite(report.task("rx_slow").activation->delta_plus(2)));
}

TEST(GatewayTest, SlowerSourcesOnlyReduceLoad) {
  const auto fast = CpaEngine(build_gateway(200, 1500)).run();
  const auto slow = CpaEngine(build_gateway(400, 3000)).run();
  EXPECT_LE(slow.task("rx_slow").wcrt, fast.task("rx_slow").wcrt);
  EXPECT_LE(slow.task("FB").wcrt, fast.task("FB").wcrt);
}

TEST(CyclicSystemTest, CycleEitherConvergesOrThrowsCleanly) {
  // a (cpu1) -> b (cpu2) -> feeds back as interference-relevant producer of
  // a's OR activation.  The engine must terminate: fixpoint or
  // AnalysisError, never a hang.
  System sys;
  const auto cpu1 = sys.add_resource({"cpu1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"cpu2", Policy::kSppPreemptive});
  const auto a = sys.add_task({"a", cpu1, 1, sched::ExecutionTime(2)});
  const auto b = sys.add_task({"b", cpu2, 1, sched::ExecutionTime(3)});
  sys.activate_by(b, {a});
  // a is activated by an external source OR b's output: a cyclic stream.
  const auto src = sys.add_task({"src", cpu2, 2, sched::ExecutionTime(1)});
  sys.activate_external(src, StandardEventModel::periodic(100));
  sys.activate_by(a, {src, b});
  const auto report = CpaEngine(sys).run();
  if (!report.converged) {
    // Graceful divergence: the affected tasks must carry degraded statuses
    // with unbounded fallback WCRTs instead of unsound last-iteration values.
    EXPECT_TRUE(report.degraded());
    EXPECT_TRUE(report.diagnostics.has_errors());
    for (const auto& t : report.tasks)
      if (t.degraded() && t.status != TaskStatus::kDegradedUpstream)
        EXPECT_TRUE(is_infinite(t.wcrt)) << t.name;
  }
}

TEST(BacklogTest, SppBacklogBoundsQueueing) {
  // A burst of 3 simultaneous activations on an otherwise idle CPU: the
  // queue holds 3 jobs at the burst instant, draining one at a time.
  const auto burst = StandardEventModel::periodic_with_jitter(100, 250);
  sched::SppAnalysis a({sched::TaskParams{"t", 1, sched::ExecutionTime(10), burst}});
  const auto r = a.analyze(0);
  EXPECT_EQ(r.backlog, 3);
  // A strictly periodic task never queues more than one activation.
  sched::SppAnalysis b({sched::TaskParams{"p", 1, sched::ExecutionTime(10),
                                          StandardEventModel::periodic(100)}});
  EXPECT_EQ(b.analyze(0).backlog, 1);
}

TEST(BacklogTest, CanBacklogCountsQueuedFrames) {
  const auto burst = StandardEventModel::periodic_with_jitter(300, 700);
  sched::CanBusAnalysis a({sched::TaskParams{"f", 1, sched::ExecutionTime(10), burst}});
  EXPECT_EQ(a.analyze(0).backlog, 3);
}

}  // namespace
}  // namespace hem::cpa
