#include "scenarios/paper_system.hpp"

#include <gtest/gtest.h>

namespace hem::scenarios {
namespace {

class PaperSystemFixture : public ::testing::Test {
 protected:
  static const PaperSystemResults& results() {
    static const PaperSystemResults r = analyze_paper_system();
    return r;
  }
};

TEST_F(PaperSystemFixture, BothModesConverge) {
  EXPECT_TRUE(results().flat.converged);
  EXPECT_TRUE(results().hem.converged);
}

TEST_F(PaperSystemFixture, BusResponseTimes) {
  // F1 (high): S1 and S2 can trigger simultaneously, queueing two F1
  // instances; the second is additionally blocked by F2:
  //   R+(q=2) = B + 2*C - delta-(2) = 2 + 8 - 0 = 10.
  // F2 (low): waits for the two queued F1 instances: R+ = 8 + 2 = 10.
  for (const auto* report : {&results().flat, &results().hem}) {
    EXPECT_EQ(report->task("F1").wcrt, 10);
    EXPECT_EQ(report->task("F2").wcrt, 10);
    EXPECT_EQ(report->task("F1").bcrt, 4);
  }
}

TEST_F(PaperSystemFixture, HemNeverWorseThanFlat) {
  for (const auto& row : results().table3) {
    EXPECT_LE(row.wcrt_hem, row.wcrt_flat) << row.task;
    EXPECT_GE(row.reduction_percent, 0.0) << row.task;
  }
}

TEST_F(PaperSystemFixture, ReductionsAreSignificantAndGrowDownThePriorityOrder) {
  // The paper's Table 3 shape: every task improves, lower-priority tasks
  // improve (much) more because they accumulate the overestimated
  // interference of all higher-priority receivers.
  const auto& t = results().table3;
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].task, "T1");
  EXPECT_EQ(t[2].task, "T3");
  EXPECT_GT(t[2].reduction_percent, 25.0);              // T3 improves a lot
  EXPECT_GE(t[2].reduction_percent, t[1].reduction_percent - 1e-9);
  for (const auto& row : t) EXPECT_GT(row.reduction_percent, 0.0) << row.task;
}

TEST_F(PaperSystemFixture, HemWcrtsArePlausible) {
  // With HEM the receivers see roughly their own signal rates; with three
  // sparse streams the busy windows are short.
  EXPECT_EQ(results().hem.task("T1").wcrt, 24);        // highest prio: own CET
  EXPECT_LE(results().hem.task("T2").wcrt, 24 + 32);   // at most one T1 on top
  EXPECT_LE(results().hem.task("T3").wcrt, 24 + 32 + 40);
}

TEST_F(PaperSystemFixture, FlatWcrtsShowFrameRateInterference) {
  // Flat: every receiver fires on every F1 arrival; T3 must absorb bursts of
  // T1+T2 work per frame arrival.
  EXPECT_GT(results().flat.task("T3").wcrt, results().hem.task("T3").wcrt);
  EXPECT_GE(results().flat.task("T1").wcrt, 24);
}

TEST_F(PaperSystemFixture, UnpackedModelsAreTighterThanTotalFrameStream) {
  // Figure 4's message as an invariant: each unpacked eta+ is dominated by
  // the total frame arrival eta+ and is strictly below it somewhere.
  const auto& total = results().f1_total;
  for (std::size_t i = 0; i < results().f1_unpacked.size(); ++i) {
    const auto& inner = results().f1_unpacked[i];
    bool strict = false;
    for (Time dt = 50; dt <= 3000; dt += 50) {
      ASSERT_LE(inner->eta_plus(dt), total->eta_plus(dt)) << "i=" << i << " dt=" << dt;
      strict |= inner->eta_plus(dt) < total->eta_plus(dt);
    }
    EXPECT_TRUE(strict) << "inner " << i;
  }
}

TEST_F(PaperSystemFixture, CpuUtilisationSane) {
  // HEM-mode CPU1 load ~ 24/250 + 32/450 + 40/1000 ~ 0.21.
  double load = 0;
  for (const char* n : {"T1", "T2", "T3"}) load += results().hem.task(n).utilization;
  EXPECT_GT(load, 0.15);
  EXPECT_LT(load, 0.30);
  // Flat-mode load is far higher (every frame activates every task).
  double flat_load = 0;
  for (const char* n : {"T1", "T2", "T3"}) flat_load += results().flat.task(n).utilization;
  EXPECT_GT(flat_load, 2.0 * load);
}

TEST(PaperSystemParamsTest, ScaledSystemStillFavoursHem) {
  // Robustness: jittered sources keep the qualitative result.
  PaperSystemParams p;
  p.s1_jitter = 50;
  p.s2_jitter = 90;
  p.s3_jitter = 200;
  const auto r = analyze_paper_system(p);
  for (const auto& row : r.table3) EXPECT_LE(row.wcrt_hem, row.wcrt_flat) << row.task;
  EXPECT_GT(r.table3[2].reduction_percent, 10.0);
}

}  // namespace
}  // namespace hem::scenarios
