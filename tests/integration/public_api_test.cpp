// Smoke test of the umbrella header: every public subsystem is reachable
// through #include "hem/hem.hpp" alone, and the one-page quickstart from
// the README compiles and produces sane numbers.

#include "hem/hem.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace hem;

TEST(PublicApiTest, ReadmeQuickstartWorks) {
  // Signal streams (Table 1 of the paper).
  auto s1 = StandardEventModel::periodic(250);
  auto s3 = StandardEventModel::periodic(1000);

  // Pack them into a frame.
  HemPtr frame = pack({{s1, SignalCoupling::kTriggering}, {s3, SignalCoupling::kPending}});

  // Analyse the bus; apply the response interval to the hierarchical stream.
  sched::CanBusAnalysis bus({{"F1", 1, sched::ExecutionTime(4), frame->outer()}});
  auto rt = bus.analyze(0);
  HemPtr out = frame->after_response(rt.bcrt, rt.wcrt);

  // Unpack: per-signal receiver activation models.
  ModelPtr t1_activation = out->inner(0);
  ModelPtr t3_activation = out->inner(1);

  EXPECT_EQ(rt.wcrt, 4);
  EXPECT_GT(t1_activation->delta_min(2), 200);
  EXPECT_LE(t3_activation->eta_plus(10'000), 12);
}

TEST(PublicApiTest, EverySubsystemIsReachable) {
  // core
  EXPECT_EQ(StandardEventModel::periodic(10)->eta_plus(25), 3);
  EXPECT_NO_THROW(DeltaFunctionModel::periodic_burst(2, 1, 10));
  EXPECT_NO_THROW(LeakyBucketModel(2, 5));
  EXPECT_NO_THROW(OffsetTransactionModel(100, {0, 30}));
  EXPECT_NO_THROW(GroupedStreamModel(StandardEventModel::periodic(10), 2, 0));
  EXPECT_NO_THROW(fit_sem(*StandardEventModel::periodic(100)));
  // sched
  EXPECT_NO_THROW(sched::PeriodicServer(10, 5));
  EXPECT_NO_THROW(sched::BoundedDelayServer(5, 1, 2));
  EXPECT_NO_THROW(
      sched::assign_priorities_dm({{sched::TaskParams{"t", 0, sched::ExecutionTime(1),
                                                      StandardEventModel::periodic(10)},
                                    10}}));
  // rtc
  EXPECT_EQ(rtc::full_service().value(7), 7);
  EXPECT_NO_THROW(rtc::upper_arrival_from(*StandardEventModel::periodic(10)));
  // io
  std::ostringstream os;
  io::write_trace_csv(os, std::vector<Time>{1, 2, 3});
  EXPECT_EQ(os.str(), "1\n2\n3\n");
  // com
  EXPECT_EQ(com::ethernet_frame_time(46, 1).worst, 84);
}

}  // namespace
