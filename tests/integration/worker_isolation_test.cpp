// End-to-end isolation test for `hemcpa --batch --isolate`: forks the real
// binary over a 30-config fleet where 3 configs deliberately segfault their
// worker (`option inject_fault=segv`) and checks the crash-only contract —
// the batch survives every crash, the crashers end up quarantined as
// `poisoned` in a complete journal, the merged CSV is bit-identical at any
// --batch-jobs width, and a --resume skips the quarantined configs without
// re-executing them.  POSIX-only (fork/exec/waitpid); skipped elsewhere.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exec/journal.hpp"

namespace hem {
namespace {

namespace fs = std::filesystem;

constexpr int kConfigs = 30;
// Sorted into the front, middle, and back of the manifest so crashes land
// at different points of every scheduling order.
constexpr int kCrashers[] = {2, 14, 27};

bool is_crasher(int index) {
  for (const int c : kCrashers)
    if (c == index) return true;
  return false;
}

std::string quick_config(int index) {
  std::ostringstream os;
  os << "resource CPU spp\n"
     << "source s sem period=" << 100 + 10 * index << " jitter=" << 5 * (index % 7) << "\n"
     << "task T resource=CPU priority=1 cet=" << 2 + index % 5 << "\n"
     << "activate T from=s\n";
  return os.str();
}

std::string crasher_config() {
  return "option inject_fault=segv\n"
         "resource CPU spp\n"
         "source s periodic period=250\n"
         "task T resource=CPU priority=1 cet=24\n"
         "activate T from=s\n";
}

class WorkerIsolationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) / (std::string("hemcpa_isolation_it_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "configs");
    for (int i = 0; i < kConfigs; ++i) {
      std::ostringstream name;
      name << "configs/" << (i < 10 ? "0" : "") << i << (is_crasher(i) ? "_crash" : "_ok")
           << ".hemcpa";
      write(name.str(), is_crasher(i) ? crasher_config() : quick_config(i));
    }
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write(const std::string& rel, const std::string& text) const {
    std::ofstream out(dir_ / rel, std::ios::binary);
    out << text;
  }

  [[nodiscard]] std::string path(const std::string& rel) const { return (dir_ / rel).string(); }

  static int run_hemcpa(const std::vector<std::string>& args) {
    const pid_t pid = fork();
    if (pid == 0) {
      const int null_fd = ::open("/dev/null", O_WRONLY);
      if (null_fd >= 0) {
        ::dup2(null_fd, STDOUT_FILENO);
        ::dup2(null_fd, STDERR_FILENO);
        ::close(null_fd);
      }
      std::vector<char*> argv;
      std::string bin = HEMCPA_BIN;
      argv.push_back(bin.data());
      std::vector<std::string> copy = args;
      for (std::string& a : copy) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(HEMCPA_BIN, argv.data());
      ::_exit(127);
    }
    if (pid < 0) return -1;
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    if (reaped != pid) return -2;
    if (WIFSIGNALED(status)) return -(1000 + WTERMSIG(status));
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  [[nodiscard]] std::vector<std::string> batch_args(const std::string& out_csv, int batch_jobs,
                                                    bool resume = false) const {
    std::vector<std::string> args = {
        "--batch",           path("configs"),
        "--out",             out_csv,
        "--batch-jobs",      std::to_string(batch_jobs),
        "--retries",         "0",
        "--crash-backoff-ms", "10",  // keep the respawn delay out of the test budget
    };
    if (resume) args.push_back("--resume");
    return args;
  }

  static std::string slurp(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(WorkerIsolationFixture, CrashingFleetSurvivesQuarantinesAndStaysDeterministic) {
  // Serial run: the 3 crashers poison (crash -> respawn -> crash again),
  // the 27 clean configs complete.  Poisoned jobs dominate the exit code.
  const std::string serial_csv = path("serial.csv");
  ASSERT_EQ(run_hemcpa(batch_args(serial_csv, /*batch_jobs=*/1)), 5);
  ASSERT_TRUE(fs::exists(serial_csv));

  // Journal must be complete and carry exactly 27 done + 3 poisoned.
  exec::Journal journal(path("serial.csv.journal"));
  ASSERT_TRUE(journal.load());
  ASSERT_EQ(journal.entries().size(), static_cast<std::size_t>(kConfigs));
  std::map<std::string, int> by_status;
  for (const exec::JournalEntry& e : journal.entries()) {
    by_status[e.status] += 1;
    const bool crasher = e.config_path.find("_crash") != std::string::npos;
    EXPECT_EQ(e.status, crasher ? "poisoned" : "done") << e.config_path;
  }
  EXPECT_EQ(by_status["done"], kConfigs - 3);
  EXPECT_EQ(by_status["poisoned"], 3);

  // Parallel run over the same fleet: same exit code, and the merged CSV
  // is byte-identical — scheduling order must never leak into results.
  const std::string wide_csv = path("wide.csv");
  ASSERT_EQ(run_hemcpa(batch_args(wide_csv, /*batch_jobs=*/4)), 5);
  ASSERT_TRUE(fs::exists(wide_csv));
  EXPECT_EQ(slurp(wide_csv), slurp(serial_csv));

  // Every clean config contributes a real data row; the crashers appear
  // only as placeholder rows carrying their quarantined state.
  const std::string csv = slurp(serial_csv);
  EXPECT_NE(csv.find(",poisoned\n"), std::string::npos);
  EXPECT_EQ(csv.find(",crashed\n"), std::string::npos);

  // --resume over an all-terminal journal re-executes nothing (poisoned
  // configs are quarantined, not retried) and rewrites the CSV unchanged.
  ASSERT_EQ(run_hemcpa(batch_args(wide_csv, /*batch_jobs=*/4, /*resume=*/true)), 5);
  EXPECT_EQ(slurp(wide_csv), slurp(serial_csv));
  exec::Journal resumed(path("wide.csv.journal"));
  ASSERT_TRUE(resumed.load());
  EXPECT_EQ(resumed.entries().size(), static_cast<std::size_t>(kConfigs));
}

TEST_F(WorkerIsolationFixture, IsolationFlagsAreValidated) {
  EXPECT_EQ(run_hemcpa({"--batch", path("configs"), "--worker-memory-mb", "-1"}), 3);
  EXPECT_EQ(run_hemcpa({"--batch", path("configs"), "--crash-backoff-ms", "ten"}), 3);
}

}  // namespace
}  // namespace hem

#endif  // POSIX
