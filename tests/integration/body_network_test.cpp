#include "scenarios/body_network.hpp"

#include <gtest/gtest.h>

namespace hem::scenarios {
namespace {

TEST(BodyNetworkTest, BaselineConverges) {
  const auto report = analyze_body_network();
  EXPECT_TRUE(report.converged);
  // Spot checks: two-hop wheel path reaches the dashboard with its own rate.
  EXPECT_NEAR(static_cast<double>(report.task("dash_wheel").activation->eta_plus(100'000)),
              100.0, 3.0);
  // Slow pending temp signal: ~2 updates per 100k ticks.
  EXPECT_LE(report.task("dash_temp").activation->eta_plus(100'000), 4);
}

TEST(BodyNetworkTest, AllDeadlinesWithinSourcePeriods) {
  const auto report = analyze_body_network();
  // Every receiver finishes well within its signal's period.
  EXPECT_LT(report.task("dash_wheel").wcrt, 1000);
  EXPECT_LT(report.task("dash_temp").wcrt, 50'000);
  EXPECT_LT(report.task("dash_climate").wcrt, 20'000);
  EXPECT_LT(report.task("bc_door").wcrt, 5'000);
  EXPECT_LT(report.task("bc_light").wcrt, 10'000);
}

TEST(BodyNetworkTest, PendingSignalsStayUnboundedAbove) {
  const auto report = analyze_body_network();
  EXPECT_TRUE(is_infinite(report.task("dash_temp").activation->delta_plus(2)));
  EXPECT_TRUE(is_infinite(report.task("dash_climate").activation->delta_plus(2)));
}

TEST(BodyNetworkTest, ScalesToManyReplicas) {
  BodyNetworkParams p;
  p.replicas = 6;
  const auto report = analyze_body_network(p);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.tasks.size(), 6u * 12u);
  // Lower-priority replicas suffer more interference but stay bounded.
  EXPECT_GE(report.task("dash_wheel_5").wcrt, report.task("dash_wheel_0").wcrt);
}

TEST(BodyNetworkTest, TimeUnitScalesLinearly) {
  BodyNetworkParams fine;
  fine.time_unit = 10;
  BodyNetworkParams coarse;
  coarse.time_unit = 20;
  const auto rf = analyze_body_network(fine);
  const auto rc = analyze_body_network(coarse);
  // Source periods double; bus/CPU times are unscaled, so responses can
  // only shrink or stay equal (less frequent interference).
  EXPECT_LE(rc.task("dash_wheel").wcrt, rf.task("dash_wheel").wcrt);
}

TEST(BodyNetworkTest, RejectsBadParams) {
  EXPECT_THROW(build_body_network({0, 10}), std::invalid_argument);
  EXPECT_THROW(build_body_network({1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace hem::scenarios
