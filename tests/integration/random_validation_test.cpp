// Randomised soundness validation: generate random task/frame sets with
// bounded utilisation, analyse them, simulate them with conforming random
// stimuli, and assert that every observed response time stays within the
// analytic worst case.  The simulator shares no code with the analyses, so
// a systematic bug in either side shows up as a violation here.

#include <gtest/gtest.h>

#include <random>

#include "core/standard_event_model.hpp"
#include "sched/can_bus.hpp"
#include "sched/spp.hpp"
#include "sim/bus_sim.hpp"
#include "sim/cpu_sim.hpp"
#include "sim/source_generator.hpp"

namespace hem {
namespace {

struct RandomTask {
  std::string name;
  Time period;
  Time jitter;
  Time cet;
};

std::vector<RandomTask> random_task_set(std::mt19937_64& rng, int n_tasks,
                                        double max_utilization) {
  std::uniform_int_distribution<Time> period_dist(50, 500);
  std::uniform_int_distribution<Time> jitter_dist(0, 100);
  std::vector<RandomTask> tasks;
  double utilization = 0.0;
  for (int i = 0; i < n_tasks; ++i) {
    RandomTask t;
    t.name = "t" + std::to_string(i);
    t.period = period_dist(rng);
    t.jitter = jitter_dist(rng);
    const double budget = (max_utilization - utilization) / (n_tasks - i);
    t.cet = std::max<Time>(1, static_cast<Time>(budget * static_cast<double>(t.period)));
    utilization += static_cast<double>(t.cet) / static_cast<double>(t.period);
    tasks.push_back(t);
  }
  return tasks;
}

class RandomSpp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSpp, SimulatedResponsesWithinAnalyticBounds) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> size_dist(2, 5);
  const auto tasks = random_task_set(rng, size_dist(rng), 0.75);

  std::vector<sched::TaskParams> params;
  for (std::size_t i = 0; i < tasks.size(); ++i)
    params.push_back(sched::TaskParams{
        tasks[i].name, static_cast<int>(i), sched::ExecutionTime(tasks[i].cet),
        StandardEventModel::sporadic(tasks[i].period, tasks[i].jitter, 0)});
  const sched::SppAnalysis analysis(params);
  const auto bounds = analysis.analyze_all();

  // Simulate with several stimuli.
  for (const auto mode : {sim::GenMode::kNominal, sim::GenMode::kEarliest,
                          sim::GenMode::kRandom}) {
    sim::EventCalendar cal;
    std::vector<sim::CpuSim::TaskDef> defs;
    for (std::size_t i = 0; i < tasks.size(); ++i)
      defs.push_back({tasks[i].name, static_cast<int>(i), tasks[i].cet, tasks[i].cet});
    sim::CpuSim cpu(cal, defs, true, rng);

    const Time horizon = 100'000;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const auto arrivals = sim::generate_arrivals(
          {tasks[i].period, tasks[i].jitter, 0, 0}, horizon, mode, rng);
      for (const Time a : arrivals) cal.at(a, [&cpu, i] { cpu.activate(i); });
    }
    cal.run_until(horizon);

    for (std::size_t i = 0; i < tasks.size(); ++i) {
      EXPECT_LE(cpu.worst_response(i), bounds[i].wcrt)
          << "seed=" << GetParam() << " task=" << tasks[i].name << " mode="
          << static_cast<int>(mode);
      if (!cpu.responses(i).empty())
        EXPECT_GE(cpu.worst_response(i), bounds[i].bcrt);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpp, ::testing::Range<std::uint64_t>(1, 21));

class RandomCan : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCan, SimulatedResponsesWithinAnalyticBounds) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> size_dist(2, 5);
  const auto frames = random_task_set(rng, size_dist(rng), 0.6);

  std::vector<sched::TaskParams> params;
  for (std::size_t i = 0; i < frames.size(); ++i)
    params.push_back(sched::TaskParams{
        frames[i].name, static_cast<int>(i), sched::ExecutionTime(frames[i].cet),
        StandardEventModel::sporadic(frames[i].period, frames[i].jitter, 0)});
  const sched::CanBusAnalysis analysis(params);
  const auto bounds = analysis.analyze_all();

  for (const auto mode : {sim::GenMode::kEarliest, sim::GenMode::kRandom}) {
    sim::EventCalendar cal;
    // Record per-frame request times to measure responses (request ->
    // completion, FIFO per frame).
    std::vector<std::vector<Time>> requests(frames.size());
    std::vector<sim::BusSim::FrameDef> defs;
    for (std::size_t i = 0; i < frames.size(); ++i)
      defs.push_back({frames[i].name, static_cast<int>(i), frames[i].cet, frames[i].cet,
                      nullptr, nullptr});
    sim::BusSim bus(cal, defs, true, rng);

    const Time horizon = 100'000;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const auto arrivals = sim::generate_arrivals(
          {frames[i].period, frames[i].jitter, 0, 0}, horizon, mode, rng);
      for (const Time a : arrivals) {
        cal.at(a, [&bus, &requests, i, a] {
          requests[i].push_back(a);
          bus.request(i);
        });
      }
    }
    cal.run_until(horizon + 10'000);

    for (std::size_t i = 0; i < frames.size(); ++i) {
      const auto& completions = bus.completions(i);
      for (std::size_t k = 0; k < completions.size(); ++k) {
        const Time response = completions[k] - requests[i][k];
        ASSERT_LE(response, bounds[i].wcrt)
            << "seed=" << GetParam() << " frame=" << frames[i].name << " k=" << k;
        ASSERT_GE(response, bounds[i].bcrt);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCan, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hem
