// End-to-end tests of the `hemfuzz` driver binary: a clean trunk run over a
// few seeds exits 0 with no reproducers; an injected-fault run exits 1,
// writes a parseable reproducer shrunk to <= 3 resources, and buckets the
// failure identically across two runs; bad usage exits 3.
// POSIX-only (std::system exit-code decoding); skipped elsewhere.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "model/textual_config.hpp"

namespace hem {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run_hemfuzz(const std::string& args, const fs::path& dir) {
  const fs::path out_file = dir / "stdout.txt";
  std::ostringstream cmd;
  cmd << "\"" << HEMFUZZ_BIN << "\" " << args << " > \"" << out_file.string()
      << "\" 2>&1";
  const int raw = std::system(cmd.str().c_str());
  RunResult result;
  result.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(out_file);
  std::ostringstream os;
  os << in.rdbuf();
  result.output = os.str();
  return result;
}

fs::path fresh_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("hemfuzz_it_" + leaf);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<fs::path> repro_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("repro-", 0) == 0) files.push_back(entry.path());
  }
  return files;
}

std::set<std::string> bucket_lines(const std::string& output) {
  std::set<std::string> buckets;
  std::istringstream lines(output);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("bucket=", 0) != 0) continue;
    // Keep only the stable prefix (bucket/oracle/fingerprint); the repro
    // path differs across output directories.
    const auto cut = line.find(" seed=");
    buckets.insert(cut == std::string::npos ? line : line.substr(0, cut));
  }
  return buckets;
}

TEST(HemfuzzTest, CleanSeedsExitZeroWithoutReproducers) {
  const fs::path dir = fresh_dir("clean");
  const RunResult r = run_hemfuzz(
      "--seeds 1..3 --mutations 1 --sim-horizon 20000 --out-dir \"" +
          dir.string() + "\"",
      dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 failure bucket(s)"), std::string::npos) << r.output;
  EXPECT_TRUE(repro_files(dir).empty());
}

TEST(HemfuzzTest, InjectedFaultIsCaughtShrunkAndBucketedDeterministically) {
  const fs::path dir_a = fresh_dir("inject_a");
  const std::string args =
      "--seeds 1..2 --mutations 0 --inject ax3 --sim-horizon 20000";
  const RunResult a =
      run_hemfuzz(args + " --out-dir \"" + dir_a.string() + "\"", dir_a);
  EXPECT_EQ(a.exit_code, 1) << a.output;
  const auto repros = repro_files(dir_a);
  ASSERT_FALSE(repros.empty()) << a.output;

  // Every reproducer must still parse (comment header included) and be
  // shrunk to at most 3 resources.
  for (const fs::path& repro : repros) {
    std::ifstream in(repro);
    std::ostringstream os;
    os << in.rdbuf();
    const std::string text = os.str();
    int resources = 0;
    std::istringstream lines(text);
    for (std::string line; std::getline(lines, line);) {
      if (line.rfind("resource ", 0) == 0) ++resources;
    }
    EXPECT_LE(resources, 3) << repro << "\n" << text;
    std::ifstream again(repro);
    EXPECT_NO_THROW((void)cpa::parse_system_config(again))
        << repro << "\n" << text;
  }

  // Same seeds + same injection => identical bucket ids on a second run.
  const fs::path dir_b = fresh_dir("inject_b");
  const RunResult b =
      run_hemfuzz(args + " --out-dir \"" + dir_b.string() + "\"", dir_b);
  EXPECT_EQ(b.exit_code, 1) << b.output;
  EXPECT_EQ(bucket_lines(a.output), bucket_lines(b.output))
      << "run A:\n" << a.output << "\nrun B:\n" << b.output;
}

TEST(HemfuzzTest, UnknownFlagExitsWithUsage) {
  const fs::path dir = fresh_dir("usage");
  const RunResult r = run_hemfuzz("--definitely-not-a-flag", dir);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("usage"), std::string::npos) << r.output;
}

TEST(HemfuzzTest, BadSeedRangeExitsWithUsage) {
  const fs::path dir = fresh_dir("badrange");
  const RunResult r = run_hemfuzz("--seeds 9..2", dir);
  EXPECT_EQ(r.exit_code, 3) << r.output;
}

}  // namespace
}  // namespace hem

#endif  // __unix__ || __APPLE__
