// End-to-end robustness test for `hemcpa --batch`: forks the real binary,
// delivers SIGINT mid-run, and checks the crash-safety contract — exit
// code 6, a complete parseable journal, no partial merged CSV, and a
// `--resume` whose final CSV is byte-identical to an uninterrupted run.
// POSIX-only (fork/exec/kill/waitpid); skipped elsewhere.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/journal.hpp"

namespace hem {
namespace {

namespace fs = std::filesystem;

// Matches examples/divergent_fixpoint.hemcpa — only a watchdog or a
// shutdown cancel stops it once the fixpoint budgets are lifted.
const char* kDivergentConfig =
    "resource R spp\n"
    "source s periodic period=3000000000\n"
    "task H resource=R priority=1 cet=3000000001\n"
    "activate H from=s\n"
    "option overload_check=off\n";

std::string quick_config(int period) {
  std::ostringstream os;
  os << "resource CPU spp\n"
     << "source s periodic period=" << period << "\n"
     << "task T resource=CPU priority=1 cet=2\n"
     << "activate T from=s\n";
  return os.str();
}

class BatchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test: ctest runs each test as its own process, so
    // a shared path would let one test's cleanup race another's run.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) / (std::string("hemcpa_batch_it_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "configs");
    // Sorted first so the divergent job is in flight when SIGINT lands.
    write("configs/00_divergent.hemcpa", kDivergentConfig);
    write("configs/10_quick.hemcpa", quick_config(10));
    write("configs/20_quick.hemcpa", quick_config(20));
    write("configs/30_quick.hemcpa", quick_config(50));
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write(const std::string& rel, const std::string& text) const {
    std::ofstream out(dir_ / rel, std::ios::binary);
    out << text;
  }

  [[nodiscard]] std::string path(const std::string& rel) const { return (dir_ / rel).string(); }

  /// Fork/exec hemcpa with `args`; deliver SIGINT after `sigint_after_ms`
  /// (< 0 = never); return the child's exit status (-1 on abnormal death).
  static int run_hemcpa(const std::vector<std::string>& args, long sigint_after_ms = -1) {
    const pid_t pid = fork();
    if (pid == 0) {
      const int null_fd = ::open("/dev/null", O_WRONLY);
      if (null_fd >= 0) {
        ::dup2(null_fd, STDOUT_FILENO);
        ::dup2(null_fd, STDERR_FILENO);
        ::close(null_fd);
      }
      std::vector<char*> argv;
      std::string bin = HEMCPA_BIN;
      argv.push_back(bin.data());
      std::vector<std::string> copy = args;
      for (std::string& a : copy) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(HEMCPA_BIN, argv.data());
      ::_exit(127);
    }
    if (pid < 0) return -1;
    if (sigint_after_ms >= 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sigint_after_ms));
      ::kill(pid, SIGINT);
    }
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    if (reaped != pid) return -2;
    if (WIFSIGNALED(status)) return -(1000 + WTERMSIG(status));
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  [[nodiscard]] std::vector<std::string> batch_args(const std::string& out_csv,
                                                    bool resume = false) const {
    std::vector<std::string> args = {
        "--batch",           path("configs"),
        "--out",             out_csv,
        "--job-budget-ms",   "1000",
        "--grace-ms",        "8000",
        "--retries",         "0",
        // Lift the default busy-window budgets so the divergent config
        // spins until the watchdog (or a shutdown cancel) stops it.
        "--fixpoint-steps",  "8000000000",
        "--fixpoint-window", "8000000000000000000",
    };
    if (resume) args.push_back("--resume");
    return args;
  }

  static std::string slurp(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
};

TEST_F(BatchFixture, SigintMidBatchJournalsCleanlyAndResumeIsByteIdentical) {
  // Baseline: uninterrupted run.  The divergent config is watchdog-
  // cancelled (a failed job), the three quick configs complete -> exit 5.
  const std::string baseline_csv = path("baseline.csv");
  ASSERT_EQ(run_hemcpa(batch_args(baseline_csv)), 5);
  ASSERT_TRUE(fs::exists(baseline_csv));

  // Interrupted run: SIGINT while the divergent job is still inside its
  // 1000 ms watchdog budget.
  const std::string out_csv = path("interrupted.csv");
  ASSERT_EQ(run_hemcpa(batch_args(out_csv), 250), 6);

  // No partial merged CSV may exist after an interrupt.
  EXPECT_FALSE(fs::exists(out_csv));

  // The journal must be complete and parseable (the `end` trailer is the
  // completeness witness — Journal::load throws on a torn file).
  const std::string journal_path = out_csv + ".journal";
  ASSERT_TRUE(fs::exists(journal_path));
  exec::Journal journal(journal_path);
  ASSERT_TRUE(journal.load());
  // The in-flight divergent job was shutdown-cancelled, NOT journaled, so
  // resume re-runs it; at most the quick jobs that finished early appear.
  for (const exec::JournalEntry& e : journal.entries())
    EXPECT_EQ(e.config_path.find("divergent"), std::string::npos) << e.config_path;

  // Resume completes the batch and the merged CSV is byte-identical to
  // the uninterrupted baseline.
  ASSERT_EQ(run_hemcpa(batch_args(out_csv, /*resume=*/true), -1), 5);
  ASSERT_TRUE(fs::exists(out_csv));
  EXPECT_EQ(slurp(out_csv), slurp(baseline_csv));

  // Every config is terminal in the resumed journal.
  exec::Journal final_journal(journal_path);
  ASSERT_TRUE(final_journal.load());
  EXPECT_EQ(final_journal.entries().size(), 4u);
}

TEST_F(BatchFixture, UsageErrorsExitThree) {
  EXPECT_EQ(run_hemcpa({}), 3);
  EXPECT_EQ(run_hemcpa({"--batch"}), 3);
  EXPECT_EQ(run_hemcpa({"--batch", path("does_not_exist")}), 3);
  EXPECT_EQ(run_hemcpa({"--batch", path("configs"), "--batch-jobs", "zero"}), 3);
}

TEST_F(BatchFixture, SingleRunExitCodesUnchangedByBatchLayer) {
  // 0: a clean config analysed the classic way.
  EXPECT_EQ(run_hemcpa({path("configs/10_quick.hemcpa")}), 0);
  // 3: unreadable config (usage beats everything).
  EXPECT_EQ(run_hemcpa({path("configs/missing.hemcpa")}), 3);
}

}  // namespace
}  // namespace hem

#endif  // POSIX
