// Tests of the seeded wide-system synthesiser (scenarios/synth.hpp):
// same seed => identical system and identical analysis report; structural
// invariants (every resource populated, layered DAG converges, utilisation
// target respected); parameter validation.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "scenarios/synth.hpp"

namespace hem::cpa {
namespace {

std::string fingerprint(const AnalysisReport& report) {
  std::ostringstream os;
  os << report.format() << "\n--csv--\n";
  io::write_report_csv(os, report);
  return os.str();
}

scenarios::SynthParams small_params(std::uint64_t seed = 3) {
  scenarios::SynthParams p;
  p.resources = 20;
  p.tasks = 120;
  p.seed = seed;
  return p;
}

TEST(SynthSystemTest, SameSeedBuildsIdenticalSystem) {
  const System a = scenarios::build_synth_system(small_params());
  const System b = scenarios::build_synth_system(small_params());
  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  ASSERT_EQ(a.resources().size(), b.resources().size());
  for (std::size_t t = 0; t < a.tasks().size(); ++t) {
    EXPECT_EQ(a.tasks()[t].name, b.tasks()[t].name);
    EXPECT_EQ(a.tasks()[t].resource, b.tasks()[t].resource);
    EXPECT_EQ(a.tasks()[t].priority, b.tasks()[t].priority);
    EXPECT_EQ(a.tasks()[t].cet.best, b.tasks()[t].cet.best);
    EXPECT_EQ(a.tasks()[t].cet.worst, b.tasks()[t].cet.worst);
  }
}

TEST(SynthSystemTest, SameSeedSameReportDifferentSeedDiffers) {
  const System a = scenarios::build_synth_system(small_params(3));
  const System b = scenarios::build_synth_system(small_params(3));
  const System c = scenarios::build_synth_system(small_params(4));
  const auto run = [](const System& sys) {
    EngineOptions opts;
    opts.jobs = 1;
    return fingerprint(CpaEngine(sys, opts).run());
  };
  EXPECT_EQ(run(a), run(b));
  EXPECT_NE(run(a), run(c));
}

TEST(SynthSystemTest, StructureIsLayeredAndPopulated) {
  const System sys = scenarios::build_synth_system(small_params());
  sys.validate();
  // Every resource carries at least one task.
  std::set<ResourceId> used;
  for (const TaskSpec& t : sys.tasks()) used.insert(t.resource);
  EXPECT_EQ(used.size(), sys.resources().size());
  // Gateway chains exist (some tasks are activated by producer outputs)
  // and only ever point at previous-layer tasks (a DAG by construction).
  int chained = 0;
  for (TaskId t = 0; t < sys.tasks().size(); ++t) {
    const auto* by = std::get_if<TaskOutputActivation>(&sys.activation(t));
    if (by == nullptr) continue;
    ++chained;
    for (const TaskId p : by->producers) EXPECT_LT(p, t) << "forward edge would cycle";
  }
  EXPECT_GT(chained, 0);
}

TEST(SynthSystemTest, ConvergesUnderAnalysis) {
  const System sys = scenarios::build_synth_system(small_params());
  EngineOptions opts;
  opts.jobs = 2;
  const AnalysisReport report = CpaEngine(sys, opts).run();
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.degraded());
}

TEST(SynthSystemTest, RejectsDegenerateParameters) {
  scenarios::SynthParams p;
  p.resources = 0;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = scenarios::SynthParams{};
  p.tasks = p.resources - 1;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = scenarios::SynthParams{};
  p.utilization = 1.5;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = scenarios::SynthParams{};
  p.min_period = 500;
  p.max_period = 100;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
}

}  // namespace
}  // namespace hem::cpa
