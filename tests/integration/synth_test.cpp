// Tests of the seeded wide-system synthesiser (scenarios/synth.hpp):
// same seed => identical system and identical analysis report; structural
// invariants (every resource populated, layered DAG converges, utilisation
// target respected); parameter validation.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "scenarios/synth.hpp"

namespace hem::cpa {
namespace {

std::string fingerprint(const AnalysisReport& report) {
  std::ostringstream os;
  os << report.format() << "\n--csv--\n";
  io::write_report_csv(os, report);
  return os.str();
}

scenarios::SynthParams small_params(std::uint64_t seed = 3) {
  scenarios::SynthParams p;
  p.resources = 20;
  p.tasks = 120;
  p.seed = seed;
  return p;
}

TEST(SynthSystemTest, SameSeedBuildsIdenticalSystem) {
  const System a = scenarios::build_synth_system(small_params());
  const System b = scenarios::build_synth_system(small_params());
  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  ASSERT_EQ(a.resources().size(), b.resources().size());
  for (std::size_t t = 0; t < a.tasks().size(); ++t) {
    EXPECT_EQ(a.tasks()[t].name, b.tasks()[t].name);
    EXPECT_EQ(a.tasks()[t].resource, b.tasks()[t].resource);
    EXPECT_EQ(a.tasks()[t].priority, b.tasks()[t].priority);
    EXPECT_EQ(a.tasks()[t].cet.best, b.tasks()[t].cet.best);
    EXPECT_EQ(a.tasks()[t].cet.worst, b.tasks()[t].cet.worst);
  }
}

TEST(SynthSystemTest, SameSeedSameReportDifferentSeedDiffers) {
  const System a = scenarios::build_synth_system(small_params(3));
  const System b = scenarios::build_synth_system(small_params(3));
  const System c = scenarios::build_synth_system(small_params(4));
  const auto run = [](const System& sys) {
    EngineOptions opts;
    opts.jobs = 1;
    return fingerprint(CpaEngine(sys, opts).run());
  };
  EXPECT_EQ(run(a), run(b));
  EXPECT_NE(run(a), run(c));
}

TEST(SynthSystemTest, StructureIsLayeredAndPopulated) {
  const System sys = scenarios::build_synth_system(small_params());
  sys.validate();
  // Every resource carries at least one task.
  std::set<ResourceId> used;
  for (const TaskSpec& t : sys.tasks()) used.insert(t.resource);
  EXPECT_EQ(used.size(), sys.resources().size());
  // Gateway chains exist (some tasks are activated by producer outputs)
  // and only ever point at previous-layer tasks (a DAG by construction).
  int chained = 0;
  for (TaskId t = 0; t < sys.tasks().size(); ++t) {
    const auto* by = std::get_if<TaskOutputActivation>(&sys.activation(t));
    if (by == nullptr) continue;
    ++chained;
    for (const TaskId p : by->producers) EXPECT_LT(p, t) << "forward edge would cycle";
  }
  EXPECT_GT(chained, 0);
}

TEST(SynthSystemTest, ConvergesUnderAnalysis) {
  const System sys = scenarios::build_synth_system(small_params());
  EngineOptions opts;
  opts.jobs = 2;
  const AnalysisReport report = CpaEngine(sys, opts).run();
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.degraded());
}

TEST(SynthSystemTest, TimeDrivenMixIsDeterministicAndWellFormed) {
  scenarios::SynthParams p = small_params();
  p.tdma_permille = 250;
  p.rr_permille = 250;
  const System a = scenarios::build_synth_system(p);
  const System b = scenarios::build_synth_system(p);
  a.validate();
  // Deterministic: same seed + same mix => identical systems.
  ASSERT_EQ(a.resources().size(), b.resources().size());
  for (std::size_t r = 0; r < a.resources().size(); ++r) {
    EXPECT_EQ(a.resources()[r].policy, b.resources()[r].policy);
    EXPECT_EQ(a.resources()[r].tdma_cycle, b.resources()[r].tdma_cycle);
  }
  // Both time-driven policies actually appear at this mix and fleet size.
  int tdma = 0;
  int rr = 0;
  for (const ResourceSpec& r : a.resources()) {
    tdma += r.policy == Policy::kTdma;
    rr += r.policy == Policy::kRoundRobin;
  }
  EXPECT_GT(tdma, 0);
  EXPECT_GT(rr, 0);
  // Slots fit their task's WCET and TDMA cycles cover the slot sum twice.
  std::vector<Time> slot_sum(a.resources().size(), 0);
  for (const TaskSpec& t : a.tasks()) {
    const Policy policy = a.resources()[t.resource].policy;
    if (policy != Policy::kTdma && policy != Policy::kRoundRobin) continue;
    EXPECT_GE(t.slot, t.cet.worst);
    slot_sum[t.resource] += t.slot;
  }
  for (std::size_t r = 0; r < a.resources().size(); ++r)
    if (a.resources()[r].policy == Policy::kTdma)
      EXPECT_EQ(a.resources()[r].tdma_cycle, 2 * slot_sum[r]);
}

TEST(SynthSystemTest, TimeDrivenMixConsumesNoExtraRandomness) {
  // Re-policying resources must not shift any RNG draw: the same seed has
  // to produce the same activation streams and execution times whether the
  // mix is on or off — that is what keeps historic seeds reproducible.
  scenarios::SynthParams plain = small_params();
  scenarios::SynthParams mixed = small_params();
  mixed.tdma_permille = 300;
  mixed.rr_permille = 200;
  const System a = scenarios::build_synth_system(plain);
  const System b = scenarios::build_synth_system(mixed);
  ASSERT_EQ(a.tasks().size(), b.tasks().size());
  for (std::size_t t = 0; t < a.tasks().size(); ++t) {
    EXPECT_EQ(a.tasks()[t].name, b.tasks()[t].name);
    EXPECT_EQ(a.tasks()[t].cet.best, b.tasks()[t].cet.best);
    EXPECT_EQ(a.tasks()[t].cet.worst, b.tasks()[t].cet.worst);
    const auto* ea = std::get_if<ExternalActivation>(&a.activation(t));
    const auto* eb = std::get_if<ExternalActivation>(&b.activation(t));
    ASSERT_EQ(ea == nullptr, eb == nullptr);
    if (ea != nullptr) EXPECT_EQ(ea->model->describe(), eb->model->describe());
  }
}

TEST(SynthSystemTest, RejectsBadTimeDrivenMix) {
  scenarios::SynthParams p = small_params();
  p.tdma_permille = 600;
  p.rr_permille = 600;  // sum > 1000
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = small_params();
  p.rr_permille = -1;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
}

TEST(SynthSystemTest, RejectsDegenerateParameters) {
  scenarios::SynthParams p;
  p.resources = 0;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = scenarios::SynthParams{};
  p.tasks = p.resources - 1;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = scenarios::SynthParams{};
  p.utilization = 1.5;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
  p = scenarios::SynthParams{};
  p.min_period = 500;
  p.max_period = 100;
  EXPECT_THROW((void)scenarios::build_synth_system(p), std::invalid_argument);
}

}  // namespace
}  // namespace hem::cpa
