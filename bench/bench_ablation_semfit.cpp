// Ablation A4: curve propagation vs. classic SEM-parameter propagation.
//
// SymTA/S-style tools re-fit every output stream to the (P, J, dmin)
// triple; this library propagates exact curves.  We quantify the cost of
// the fit on the paper system: receiver WCRTs with (a) exact curves,
// (b) every stream re-fitted to a SEM at each propagation step, for both
// the flat and the HEM receiver models.

#include <cstdio>

#include "core/sem_fit.hpp"
#include "scenarios/paper_system.hpp"
#include "sched/spp.hpp"

namespace {

using namespace hem;

/// Run the CPU1 analysis with the given receiver activation models.
std::vector<Time> cpu_wcrts(const std::vector<ModelPtr>& activations) {
  const scenarios::PaperSystemParams p;
  sched::SppAnalysis cpu({
      sched::TaskParams{"T1", 1, sched::ExecutionTime(p.t1_cet), activations[0]},
      sched::TaskParams{"T2", 2, sched::ExecutionTime(p.t2_cet), activations[1]},
      sched::TaskParams{"T3", 3, sched::ExecutionTime(p.t3_cet), activations[2]},
  });
  std::vector<Time> out;
  for (const auto& r : cpu.analyze_all()) out.push_back(r.wcrt);
  return out;
}

std::vector<ModelPtr> fit_all(const std::vector<ModelPtr>& models) {
  std::vector<ModelPtr> out;
  for (const auto& m : models) out.push_back(fit_sem(*m));
  return out;
}

}  // namespace

int main() {
  using namespace hem;

  const auto results = scenarios::analyze_paper_system();

  const std::vector<ModelPtr> hem_curves = results.f1_unpacked;
  const std::vector<ModelPtr> hem_fitted = fit_all(hem_curves);
  const std::vector<ModelPtr> flat_curves(3, results.f1_total);
  const std::vector<ModelPtr> flat_fitted = fit_all(flat_curves);

  const auto hem_exact = cpu_wcrts(hem_curves);
  const auto hem_sem = cpu_wcrts(hem_fitted);
  const auto flat_exact = cpu_wcrts(flat_curves);
  const auto flat_sem = cpu_wcrts(flat_fitted);

  std::puts("=== Ablation A4: curve propagation vs SEM re-fitting (paper system) ===");
  std::printf("%-6s %12s %12s %12s %12s\n", "Task", "HEM curves", "HEM+SEMfit", "flat curves",
              "flat+SEMfit");
  const char* names[] = {"T1", "T2", "T3"};
  for (int i = 0; i < 3; ++i) {
    std::printf("%-6s %12lld %12lld %12lld %12lld\n", names[i],
                static_cast<long long>(hem_exact[i]), static_cast<long long>(hem_sem[i]),
                static_cast<long long>(flat_exact[i]), static_cast<long long>(flat_sem[i]));
  }

  std::puts("\nFitted parameters of the unpacked streams:");
  for (int i = 0; i < 3; ++i)
    std::printf("  %s: %s  ->  %s\n", names[i], hem_curves[i]->describe().c_str(),
                hem_fitted[i]->describe().c_str());

  std::puts("\nReading: the SEM fit is exact for the (nearly periodic) unpacked");
  std::puts("streams but loses precision on the OR-shaped total frame stream -");
  std::puts("hierarchical models and curve propagation attack different losses.");
  return 0;
}
