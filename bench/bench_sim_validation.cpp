// Ablation A2: bound tightness.  Runs the discrete-event simulator on the
// paper system under several stimulus modes and compares observed WCRTs
// with the analytic flat and HEM bounds.  The simulator is an independent
// implementation, so "observed <= HEM <= flat" is a live soundness and
// tightness demonstration.

#include <cstdio>

#include "scenarios/paper_system.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace hem;

  const auto analysis = scenarios::analyze_paper_system();

  struct ModeCase {
    const char* name;
    sim::GenMode mode;
    std::uint64_t seed;
  };
  const ModeCase cases[] = {
      {"nominal (in phase)", sim::GenMode::kNominal, 1},
      {"earliest (burst)", sim::GenMode::kEarliest, 1},
      {"random seed 1", sim::GenMode::kRandom, 1},
      {"random seed 7", sim::GenMode::kRandom, 7},
      {"random seed 42", sim::GenMode::kRandom, 42},
  };

  std::puts("=== Ablation A2: observed WCRT vs analytic bounds (paper system) ===");
  std::printf("%-22s %6s %6s %6s\n", "stimulus", "T1", "T2", "T3");
  for (const auto& c : cases) {
    const auto cfg = scenarios::make_paper_sim_config({}, 400'000, c.mode, c.seed);
    const auto res = sim::Simulator(cfg).run();
    std::printf("%-22s %6lld %6lld %6lld\n", c.name,
                static_cast<long long>(res.tasks.at("T1").wcrt),
                static_cast<long long>(res.tasks.at("T2").wcrt),
                static_cast<long long>(res.tasks.at("T3").wcrt));
  }
  std::printf("%-22s %6lld %6lld %6lld\n", "HEM bound",
              static_cast<long long>(analysis.hem.task("T1").wcrt),
              static_cast<long long>(analysis.hem.task("T2").wcrt),
              static_cast<long long>(analysis.hem.task("T3").wcrt));
  std::printf("%-22s %6lld %6lld %6lld\n", "flat bound",
              static_cast<long long>(analysis.flat.task("T1").wcrt),
              static_cast<long long>(analysis.flat.task("T2").wcrt),
              static_cast<long long>(analysis.flat.task("T3").wcrt));

  std::puts("\nObserved activation counts over the run (HEM predicts per-signal");
  std::puts("rates; flat would charge the total frame rate to every task):");
  const auto cfg = scenarios::make_paper_sim_config({}, 400'000, sim::GenMode::kRandom, 1);
  const auto res = sim::Simulator(cfg).run();
  std::printf("frames F1: %zu, T1: %zu, T2: %zu, T3: %zu activations\n",
              res.frame_completions.at("F1").size(), res.tasks.at("T1").activations.size(),
              res.tasks.at("T2").activations.size(), res.tasks.at("T3").activations.size());
  return 0;
}
