// Illustrates the paper's Figure 3 / Section 4 math: the distance bounds
// between frames that carry signals of a specific stream (eqs. 5-8).
// For a triggering signal the frame distances equal the signal distances;
// for a pending signal the minimum distance shrinks by the maximum frame
// gap delta+_f(2) (the "just missed a frame" scenario) and the maximum
// distance is unbounded.

#include <cstdio>

#include "core/model_io.hpp"
#include "core/standard_event_model.hpp"
#include "hierarchical/pack_constructor.hpp"

int main() {
  using namespace hem;

  const auto trig = StandardEventModel::periodic(250);     // S1-like
  const auto pend = StandardEventModel::periodic(1000);    // S3-like
  const auto hem = pack({{trig, SignalCoupling::kTriggering},
                         {pend, SignalCoupling::kPending}});

  std::printf("Frame stream (outer): %s\n", hem->outer()->describe().c_str());
  std::printf("max frame gap delta+_f(2) = %s\n\n",
              format_time(hem->outer()->delta_plus(2)).c_str());

  std::puts("n      signal d-   signal d+   | trig d-'   trig d+'   | pend d-'   pend d+'");
  for (Count n = 2; n <= 10; ++n) {
    std::printf("%-6lld %-11s %-11s | %-10s %-10s | %-10s %-10s\n",
                static_cast<long long>(n), format_time(pend->delta_min(n)).c_str(),
                format_time(pend->delta_plus(n)).c_str(),
                format_time(hem->inner(0)->delta_min(n)).c_str(),
                format_time(hem->inner(0)->delta_plus(n)).c_str(),
                format_time(hem->inner(1)->delta_min(n)).c_str(),
                format_time(hem->inner(1)->delta_plus(n)).c_str());
  }

  std::puts("\nThe pending column shows eq. (7): delta-'(n) = max(delta-(n) -");
  std::puts("delta+_f(2), delta-_f(n)), and eq. (8): delta+'(n) = inf.");
  return 0;
}
