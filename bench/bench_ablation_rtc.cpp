// Ablation A6: comparison with the OTHER compositional approach the paper
// cites - Real-Time Calculus (Thiele et al. [11]).  The same CPU1 task
// sets (flat and HEM receiver models) are analysed with (a) the exact
// busy-window SPP analysis and (b) an RTC fixed-priority GPC chain.
//
// Expected shape: both agree on who is schedulable; the busy-window bound
// is tighter (it is exact for SPP), while RTC composes more generally.
// The HEM-vs-flat gap dwarfs the analysis-method gap: choosing the right
// STREAM model matters more than the local analysis flavour.

#include <cstdio>

#include "rtc/gpc.hpp"
#include "scenarios/paper_system.hpp"
#include "sched/spp.hpp"

int main() {
  using namespace hem;

  const auto results = scenarios::analyze_paper_system();
  const scenarios::PaperSystemParams p;
  const Time cets[] = {p.t1_cet, p.t2_cet, p.t3_cet};
  const char* names[] = {"T1", "T2", "T3"};

  const auto run_rtc = [&](const std::vector<ModelPtr>& activations) {
    std::vector<rtc::RtcTask> tasks;
    for (int i = 0; i < 3; ++i)
      tasks.push_back(rtc::RtcTask{names[i], rtc::upper_arrival_from(*activations[i]), cets[i]});
    return rtc::analyze_fp_rtc(tasks);
  };
  const auto run_spp = [&](const std::vector<ModelPtr>& activations) {
    std::vector<sched::TaskParams> tasks;
    for (int i = 0; i < 3; ++i)
      tasks.push_back(
          sched::TaskParams{names[i], i + 1, sched::ExecutionTime(cets[i]), activations[i]});
    std::vector<Time> out;
    for (const auto& r : sched::SppAnalysis(tasks).analyze_all()) out.push_back(r.wcrt);
    return out;
  };

  const std::vector<ModelPtr> hem_act = results.f1_unpacked;
  const std::vector<ModelPtr> flat_act(3, results.f1_total);

  const auto hem_rtc = run_rtc(hem_act);
  const auto hem_spp = run_spp(hem_act);
  const auto flat_rtc = run_rtc(flat_act);
  const auto flat_spp = run_spp(flat_act);

  std::puts("=== Ablation A6: busy-window (CPA) vs RTC GPC chain, paper CPU1 ===");
  std::printf("%-6s %14s %14s %14s %14s\n", "Task", "HEM CPA", "HEM RTC", "flat CPA",
              "flat RTC");
  for (int i = 0; i < 3; ++i) {
    std::printf("%-6s %14lld %14lld %14lld %14lld\n", names[i],
                static_cast<long long>(hem_spp[i]), static_cast<long long>(hem_rtc[i].delay),
                static_cast<long long>(flat_spp[i]),
                static_cast<long long>(flat_rtc[i].delay));
  }
  std::puts("\nReading: the stream model (HEM vs flat) dominates the bound quality;");
  std::puts("the local analysis flavour (busy-window vs RTC) is second order.");
  return 0;
}
