// Ablation A1: how does the HEM advantage scale with the number of signals
// packed into one frame?  We grow the paper system's F1 from 2 to 8
// triggering signals (periods spread over [250, 950]) plus one pending
// signal, and report the WCRT of the lowest-priority receiver under flat
// and HEM analysis.
//
// Expectation: the flat WCRT grows quickly (every receiver is charged the
// total frame rate) while the HEM WCRT grows slowly; the reduction
// percentage rises with the packing degree.

#include <cstdio>
#include <vector>

#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/system.hpp"

namespace {

using namespace hem;

struct Row {
  int signals;
  Time flat;
  Time hem;
};

Row run_case(int n_signals, bool hierarchical) {
  cpa::System sys;
  const auto bus = sys.add_resource({"CAN", cpa::Policy::kSpnpCan});
  const auto cpu = sys.add_resource({"CPU", cpa::Policy::kSppPreemptive});

  const auto frame = sys.add_task({"F", bus, 1, sched::ExecutionTime(4)});

  std::vector<cpa::PackedActivation::Input> inputs;
  std::vector<cpa::TaskId> receivers;
  for (int i = 0; i < n_signals; ++i) {
    const Time period = 250 + 100 * i;
    inputs.push_back({StandardEventModel::periodic(period), SignalCoupling::kTriggering});
    receivers.push_back(sys.add_task({"T" + std::to_string(i), cpu, i + 1,
                                      sched::ExecutionTime(10 + 2 * i)}));
  }
  // One pending signal at the end, consumed by the lowest-priority task.
  inputs.push_back({StandardEventModel::periodic(2000), SignalCoupling::kPending});
  receivers.push_back(sys.add_task({"Tslow", cpu, n_signals + 1, sched::ExecutionTime(30)}));

  sys.activate_packed(frame, inputs);
  for (std::size_t i = 0; i < receivers.size(); ++i) {
    if (hierarchical)
      sys.activate_unpacked(receivers[i], frame, i);
    else
      sys.activate_by(receivers[i], {frame});
  }

  const auto report = cpa::CpaEngine(sys).run();
  Row row{n_signals, 0, 0};
  (hierarchical ? row.hem : row.flat) = report.task("Tslow").wcrt;
  return row;
}

}  // namespace

int main() {
  std::puts("=== Ablation A1: WCRT of the slowest receiver vs packing degree ===");
  std::printf("%-16s %10s %10s %9s\n", "trig signals", "R+ flat", "R+ HEM", "Red.");
  for (int n = 2; n <= 8; ++n) {
    Row flat{0, 0, 0}, hemr{0, 0, 0};
    bool flat_overload = false;
    try {
      flat = run_case(n, false);
    } catch (const hem::AnalysisError&) {
      flat_overload = true;  // flat over-approximation overloads the CPU
    }
    hemr = run_case(n, true);
    if (flat_overload) {
      std::printf("%-16d %10s %10lld %9s\n", n, "OVERLOAD", static_cast<long long>(hemr.hem),
                  "-");
    } else {
      const double red = 100.0 * static_cast<double>(flat.flat - hemr.hem) /
                         static_cast<double>(flat.flat);
      std::printf("%-16d %10lld %10lld %8.1f%%\n", n, static_cast<long long>(flat.flat),
                  static_cast<long long>(hemr.hem), red);
    }
  }
  std::puts("\n(OVERLOAD: the flat abstraction claims a load > 1 although the real");
  std::puts("system is schedulable - the strongest form of the paper's argument.)");
  return 0;
}
