// Regenerates the paper's Table 3 (and echoes the Table 1/2 inputs):
// worst-case response times of T1..T3 on CPU1 with flat event streams vs.
// hierarchical event models, plus the reduction column.
//
// Paper reference values (DATE'08, Table 3): the absolute WCRTs use
// unspecified time units; the reproduction criterion is the SHAPE - every
// task improves, with large double-digit reductions for the lower-priority
// receivers.

#include <cstdio>

#include "scenarios/paper_system.hpp"

int main() {
  using namespace hem;

  std::puts("=== Table 1: Sources ===");
  std::puts("Source  Period  Type");
  std::puts("S1      250     triggering");
  std::puts("S2      450     triggering");
  std::puts("S3      1000    pending");
  std::puts("S4      400     triggering");

  std::puts("\n=== Table 2: Bus (CAN - scheduled) ===");
  std::puts("Frame   C (ticks)   Priority");
  std::puts("F1      [4:4]       High");
  std::puts("F2      [2:2]       Low");

  const auto results = scenarios::analyze_paper_system();

  std::puts("\n=== Table 3: CPU (SPP - scheduled), reproduced ===");
  std::printf("%-6s %-8s %-6s %10s %10s %9s\n", "Task", "CET", "Prio", "R+ flat", "R+ HEM",
              "Red.");
  for (const auto& row : results.table3) {
    std::printf("%-6s [%lld:%lld] %-6s %10lld %10lld %8.1f%%\n", row.task.c_str(),
                static_cast<long long>(row.cet), static_cast<long long>(row.cet),
                row.priority.c_str(), static_cast<long long>(row.wcrt_flat),
                static_cast<long long>(row.wcrt_hem), row.reduction_percent);
  }

  std::puts("\nBus frame response times (both modes agree):");
  std::printf("F1: R = [%lld:%lld]   F2: R = [%lld:%lld]\n",
              static_cast<long long>(results.hem.task("F1").bcrt),
              static_cast<long long>(results.hem.task("F1").wcrt),
              static_cast<long long>(results.hem.task("F2").bcrt),
              static_cast<long long>(results.hem.task("F2").wcrt));

  std::printf("\nGlobal iterations: flat %d, HEM %d\n", results.flat.iterations,
              results.hem.iterations);
  return 0;
}
