// Warm-model-cache benchmark of the analysis daemon (`hemcpad`).
//
// Measures the daemon's central performance claim: keeping the immutable,
// memoisation-warm model DAG of a finished analysis alive and seeding
// resubmissions from it beats re-running cold.  The benchmark exercises the
// exact code path the daemon uses per submission (parse, cache lookup,
// external-model interning, exec::run_analysis_attempt with a warm
// snapshot) minus the socket hop, so the numbers isolate the cache effect
// from transport noise.
//
// Scenarios, per workload:
//   * cold            — fresh run, no snapshot (what plain `hemcpa` does);
//   * warm_identical  — resubmission of the identical config, seeded via
//                       WarmModelCache::find_exact (daemon fast path);
//   * warm_variant    — an edited config warm-started from the closest
//                       cached snapshot via WarmModelCache::best_base.
//
// Results go to BENCH_daemon.json: median wall-clock per scenario, the
// speedup of each warm mode over cold, how many tasks seeded warm, and
// whether the warm rows were byte-identical to the cold rows (they must
// be — warm starting trades work, never results).
//
// Usage: bench_daemon [--quick] [--out <path>]
//   --quick  smaller workloads and fewer repetitions (CI smoke test)

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "daemon/model_cache.hpp"
#include "exec/analysis_attempt.hpp"
#include "exec/journal.hpp"
#include "model/engine_snapshot.hpp"
#include "model/textual_config.hpp"

namespace {

using namespace hem;

/// Feed-forward chain: one task per resource settles per global iteration,
/// so cold runs pay `length` iterations of local analyses.
std::string chain_config(int length) {
  std::ostringstream os;
  for (int i = 1; i <= length; ++i) os << "resource R" << i << " spp\n";
  os << "source s sem period=100 jitter=250\n";
  for (int i = 1; i <= length; ++i)
    os << "task T" << i << " resource=R" << i << " priority=1 cet=" << (1 + i % 3) << "\n";
  os << "activate T1 from=s\n";
  for (int i = 2; i <= length; ++i) os << "activate T" << i << " from=T" << (i - 1) << "\n";
  return os.str();
}

/// High-load burst config: busy-window work grows with `jitter`, giving a
/// tunable cold analysis cost with a single task.
std::string burst_config(long jitter) {
  std::ostringstream os;
  os << "resource R spp\n"
     << "source s sem period=1000 jitter=" << jitter << "\n"
     << "task H resource=R priority=2 cet=900\n"
     << "activate H from=s\n"
     << "option overload_check=off\n";
  return os.str();
}

struct Measurement {
  double wall_ms = 0.0;
  long warm_seeded = 0;
  std::vector<std::string> rows;
  std::shared_ptr<const cpa::EngineSnapshot> snapshot;
  bool ok = false;
};

Measurement run_once(const std::string& config, const cpa::EngineSnapshot* warm,
                     bool make_snapshot) {
  // Parse inside the measured section: the daemon parses every submission
  // too, so the speedup reported here is the one a daemon client sees.
  const auto t0 = std::chrono::steady_clock::now();
  std::istringstream in(config);
  cpa::ParsedSystem parsed = cpa::parse_system_config(in);
  if (warm != nullptr) (void)cpa::intern_external_models(parsed.system, *warm);
  exec::AttemptOptions opt;
  opt.warm = warm;
  opt.keep_report = true;
  opt.make_snapshot = make_snapshot;
  const exec::AttemptOutcome out = exec::run_analysis_attempt(parsed, "bench", opt, nullptr);
  const auto t1 = std::chrono::steady_clock::now();

  Measurement m;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.ok = out.ok;
  m.rows = out.rows;
  m.snapshot = out.snapshot;
  if (out.report) m.warm_seeded = out.report->stats.warm_seeded;
  return m;
}

double median_ms(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct ScenarioResult {
  double cold_ms = 0.0;
  double warm_identical_ms = 0.0;
  double warm_variant_ms = 0.0;
  long warm_seeded_identical = 0;
  long warm_seeded_variant = 0;
  bool identical_rows_equal = false;
  bool variant_ok = false;
};

ScenarioResult bench_workload(const std::string& name, const std::string& config,
                              const std::string& variant, int reps) {
  ScenarioResult r;

  // Cold baseline + snapshot capture, exactly once per repetition.
  std::vector<double> cold;
  Measurement cold_run;
  for (int i = 0; i < reps; ++i) {
    cold_run = run_once(config, nullptr, /*make_snapshot=*/true);
    if (!cold_run.ok) {
      std::cerr << "workload " << name << ": cold run failed\n";
      return r;
    }
    cold.push_back(cold_run.wall_ms);
  }
  r.cold_ms = median_ms(cold);

  // The daemon's cache, fed like handle_submit feeds it.
  hem::daemon::WarmModelCache cache(4);
  const std::uint64_t fp = exec::fingerprint_bytes(config.data(), config.size());
  cache.insert(fp, cold_run.snapshot);

  std::vector<double> warm;
  Measurement warm_run;
  for (int i = 0; i < reps; ++i) {
    const auto snap = cache.find_exact(fp);
    warm_run = run_once(config, snap.get(), /*make_snapshot=*/false);
    warm.push_back(warm_run.wall_ms);
  }
  r.warm_identical_ms = median_ms(warm);
  r.warm_seeded_identical = warm_run.warm_seeded;
  r.identical_rows_equal = warm_run.rows == cold_run.rows;

  if (!variant.empty()) {
    std::vector<double> var;
    Measurement var_run;
    for (int i = 0; i < reps; ++i) {
      std::istringstream in(variant);
      cpa::ParsedSystem probe = cpa::parse_system_config(in);
      const auto base = cache.best_base(probe.system);
      var_run = run_once(variant, base.get(), /*make_snapshot=*/false);
      var.push_back(var_run.wall_ms);
    }
    r.warm_variant_ms = median_ms(var);
    r.warm_seeded_variant = var_run.warm_seeded;
    r.variant_ok = var_run.ok;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_daemon.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    else {
      std::cerr << "usage: bench_daemon [--quick] [--out <path>]\n";
      return 2;
    }
  }
  const int reps = quick ? 3 : 5;

  struct Workload {
    const char* name;
    std::string config;
    std::string variant;
  };
  std::vector<Workload> workloads;
  {
    const int chain_len = quick ? 8 : 16;
    // Variant: same chain with the last task's execution time nudged — the
    // daemon's "edit one task, resubmit" flow.
    std::string chain = chain_config(chain_len);
    std::string chain_variant = chain;
    const std::string needle = "cet=" + std::to_string(1 + chain_len % 3) + "\n";
    const auto pos = chain_variant.rfind(needle);
    if (pos != std::string::npos) chain_variant.replace(pos, needle.size(), "cet=4\n");
    workloads.push_back({"chain", chain, chain_variant});
    workloads.push_back({"burst_small", burst_config(quick ? 300'000 : 1'000'000), ""});
    if (!quick) workloads.push_back({"burst_large", burst_config(4'000'000), ""});
  }

  std::ostringstream json;
  json << "{\n  \"benchmark\": \"daemon_warm_cache\",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"reps\": " << reps << ",\n  \"runs\": [\n";
  bool first = true;
  bool all_ok = true;
  for (const Workload& w : workloads) {
    std::cerr << "workload " << w.name << "...\n";
    const ScenarioResult r = bench_workload(w.name, w.config, w.variant, reps);
    if (r.cold_ms == 0.0) {
      all_ok = false;
      continue;
    }
    const double speedup_identical =
        r.warm_identical_ms > 0 ? r.cold_ms / r.warm_identical_ms : 0.0;
    const double speedup_variant =
        r.warm_variant_ms > 0 ? r.cold_ms / r.warm_variant_ms : 0.0;
    all_ok = all_ok && r.identical_rows_equal;
    if (!first) json << ",\n";
    first = false;
    json << "    {\"workload\": \"" << w.name << "\", \"cold_ms\": " << r.cold_ms
         << ", \"warm_identical_ms\": " << r.warm_identical_ms
         << ", \"speedup_identical\": " << speedup_identical
         << ", \"warm_seeded_identical\": " << r.warm_seeded_identical
         << ", \"identical_rows_equal\": " << (r.identical_rows_equal ? "true" : "false");
    if (!w.variant.empty()) {
      json << ", \"warm_variant_ms\": " << r.warm_variant_ms
           << ", \"speedup_variant\": " << speedup_variant
           << ", \"warm_seeded_variant\": " << r.warm_seeded_variant;
    }
    json << "}";
    std::cerr << "  cold " << r.cold_ms << " ms, warm " << r.warm_identical_ms
              << " ms (x" << speedup_identical << ", seeded " << r.warm_seeded_identical
              << ")\n";
  }
  json << "\n  ]\n}\n";

  std::ofstream out(out_path);
  out << json.str();
  std::cout << json.str();
  return all_ok ? 0 : 1;
}
