#pragma once

/// \file bench_json.hpp
/// Shared result-file plumbing for the bench executables.
///
/// All benchmarks append into ONE results file (BENCH_engine.json) shaped as
/// named top-level sections, so independent benches can update their own
/// section without clobbering each other's:
///
///   {
///     "engine_scaling": { ... },
///     "algebra_cost":   { ... }
///   }
///
/// `merge_json_section` is a depth-1 merge: it re-reads the file, replaces
/// (or adds) exactly one section, and rewrites the rest byte-for-byte.  The
/// parser only needs to split top-level `"key": { balanced object }` pairs —
/// anything that does not parse as a sectioned object (e.g. the legacy
/// single-object layout older benches wrote) is treated as absent and
/// overwritten wholesale.

#include <cstddef>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace hem::bench {

/// Split a sectioned results file into its top-level `name -> raw object
/// text` pairs.  Returns an empty map when `text` is not an object whose
/// values are all objects (legacy layouts, corrupt files) — callers then
/// start a fresh file.
inline std::map<std::string, std::string> read_json_sections(const std::string& text) {
  std::map<std::string, std::string> sections;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
                               text[i] == '\r'))
      ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return {};
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') return sections;  // empty object
  while (i < text.size()) {
    skip_ws();
    if (i >= text.size() || text[i] != '"') return {};
    const std::size_t key_start = ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\') ++i;  // escaped char inside the key
      ++i;
    }
    if (i >= text.size()) return {};
    const std::string key = text.substr(key_start, i - key_start);
    ++i;
    skip_ws();
    if (i >= text.size() || text[i] != ':') return {};
    ++i;
    skip_ws();
    // Section values must be objects; anything else marks a legacy layout.
    if (i >= text.size() || text[i] != '{') return {};
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < text.size(); ++i) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\')
          ++i;
        else if (c == '"')
          in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) {
        ++i;
        break;
      }
    }
    if (depth != 0) return {};
    sections[key] = text.substr(value_start, i - value_start);
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return sections;
    return {};
  }
  return {};
}

/// Replace (or add) one named section of the results file at `path` with
/// `body` (a complete JSON object, braces included) and rewrite the file.
/// Unknown/unsectioned existing content is discarded.  Returns false when
/// the file cannot be written.
inline bool merge_json_section(const std::string& path, const std::string& section,
                               const std::string& body) {
  std::map<std::string, std::string> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      sections = read_json_sections(buffer.str());
    }
  }
  sections[section] = body;
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  std::size_t emitted = 0;
  for (const auto& [name, value] : sections) {
    out << "\"" << name << "\": " << value;
    if (++emitted < sections.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace hem::bench
