// Ablation A5: relation to Albers-style hierarchical SINGLE-stream models
// (paper's related work [1]).
//
// Scenario 1 (where [1] helps): a dispatcher task on the receiver CPU is
// activated once per signal INSTANCE in each arriving frame (B = 3 signals
// per frame).  Its activation stream really is "a group of 3 per frame";
// the grouped model captures that burst structure far better than a
// flat SEM fit of the same stream.
//
// Scenario 2 (where only HEMs help): the paper's three receiver tasks.
// A single-stream hierarchy has no notion of which group member belongs to
// which signal, so every receiver still gets charged the full grouped
// stream; the HEM unpacked bounds stay far below.

#include <cstdio>

#include "core/grouped_stream_model.hpp"
#include "core/sem_fit.hpp"
#include "scenarios/paper_system.hpp"
#include "sched/spp.hpp"

int main() {
  using namespace hem;

  const auto results = scenarios::analyze_paper_system();
  const ModelPtr frame_stream = results.f1_total;  // F1 output stream

  // --- Scenario 1: dispatcher processing every signal instance -----------
  const auto grouped = std::make_shared<GroupedStreamModel>(frame_stream, 3, 0);
  const auto flat_fit = fit_sem(*grouped);

  const auto wcrt_with = [&](const ModelPtr& act) {
    sched::SppAnalysis cpu({sched::TaskParams{"dispatch", 1, sched::ExecutionTime(10), act}});
    return cpu.analyze(0).wcrt;
  };

  std::puts("=== A5.1: dispatcher activated per signal instance (B=3 per frame) ===");
  std::printf("grouped hierarchical single-stream model : WCRT = %lld\n",
              static_cast<long long>(wcrt_with(grouped)));
  std::printf("flat SEM fit of the same stream          : WCRT = %lld  (%s)\n",
              static_cast<long long>(wcrt_with(flat_fit)), flat_fit->describe().c_str());

  std::puts("\n=== A5.2: per-signal receivers (the paper's T1..T3) ===");
  std::printf("%-6s %16s %16s\n", "Task", "grouped stream", "HEM unpacked");
  const char* names[] = {"T1", "T2", "T3"};
  // With a single-stream hierarchy every receiver sees the whole grouped
  // stream (one group member per frame is "theirs", but the model cannot
  // say which): conservatively one activation per frame, i.e. the flat
  // frame stream - identical to the paper's flat baseline.
  for (int i = 0; i < 3; ++i) {
    std::printf("%-6s %16lld %16lld\n", names[i],
                static_cast<long long>(results.flat.task(names[i]).wcrt),
                static_cast<long long>(results.hem.task(names[i]).wcrt));
  }
  std::puts("\nReading: single-stream hierarchies ([1]) sharpen burst structure of");
  std::puts("one stream; only multi-stream hierarchies (this paper) remove the");
  std::puts("per-receiver overestimation of packed communication.");
  return 0;
}
