// Sensitivity sweep: design headroom under flat vs hierarchical analysis.
// For the paper system, compute (a) the maximum CET of each receiver task
// and (b) the minimum period of source S1 that keep all receivers within a
// 250-tick deadline, under both analyses.  The HEM analysis certifies far
// more headroom - the practical payoff of tighter bounds.

#include <cstdio>

#include "core/standard_event_model.hpp"
#include "model/sensitivity.hpp"
#include "scenarios/paper_system.hpp"

int main() {
  using namespace hem;
  using cpa::DeadlineMap;

  const scenarios::PaperSystemParams p;
  const cpa::System flat = scenarios::build_paper_system(p, false);
  const cpa::System hier = scenarios::build_paper_system(p, true);
  const DeadlineMap deadlines{{"T1", 250}, {"T2", 250}, {"T3", 250}};

  std::puts("=== Sensitivity: max CET keeping all CPU1 deadlines at 250 ===");
  std::printf("%-6s %12s %12s %12s\n", "Task", "paper CET", "max (flat)", "max (HEM)");
  const struct {
    const char* name;
    Time cet;
  } tasks[] = {{"T1", p.t1_cet}, {"T2", p.t2_cet}, {"T3", p.t3_cet}};
  for (const auto& t : tasks) {
    const Time f = cpa::max_feasible_cet(flat, t.name, 1, 400, deadlines);
    const Time h = cpa::max_feasible_cet(hier, t.name, 1, 400, deadlines);
    std::printf("%-6s %12lld %12lld %12lld\n", t.name, static_cast<long long>(t.cet),
                static_cast<long long>(f), static_cast<long long>(h));
  }

  std::puts("\n=== Sensitivity: min period of S1 keeping deadlines at 250 ===");
  // S1 feeds F1 (packed input 0) and, unpacked, T1.
  const auto sweep = [&](const cpa::System& base) {
    const cpa::TaskId f1 = base.task_id("F1");
    const auto mutator = [f1](cpa::System& sys, Time period) {
      // Rebuild F1's packed activation with the probed S1 period.
      const scenarios::PaperSystemParams pp;
      sys.activate_packed(f1,
                          {{StandardEventModel::periodic(period), SignalCoupling::kTriggering},
                           {StandardEventModel::periodic(pp.s2_period),
                            SignalCoupling::kTriggering},
                           {StandardEventModel::periodic(pp.s3_period),
                            SignalCoupling::kPending}});
    };
    return cpa::min_feasible_value(base, mutator, 10, 250, deadlines);
  };
  std::printf("flat: S1 period can shrink to %lld\n", static_cast<long long>(sweep(flat)));
  std::printf("HEM:  S1 period can shrink to %lld\n", static_cast<long long>(sweep(hier)));

  std::puts("\n(Values beyond the probed range print as range bound + 1.)");
  return 0;
}
