// Ablation A3: cost of the event-model algebra, lazy DAG vs compiled flat
// form (rtc/compile.hpp).  Each case builds twin model DAGs, warms the lazy
// twin's memo caches, lowers the other with ensure_compiled, and drives both
// through the SAME deterministic query sweep — so the measured gap is
// steady-state query cost (memoised virtual dispatch + galloping inversion
// vs. flat binary search), not cold-cache fill.  The sweeps also checksum
// every answer on both sides and abort on divergence, doubling as a
// differential smoke test.
//
// Results land in the "algebra_cost" section of BENCH_engine.json (see
// bench_json.hpp); bench_engine_scaling owns the "engine_scaling" section.
//
// Usage: bench_algebra_cost [--quick] [--out <path>]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/combinators.hpp"
#include "core/output_model.hpp"
#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "rtc/compile.hpp"
#include "scenarios/paper_system.hpp"

namespace {

using namespace hem;

using Clock = std::chrono::steady_clock;

/// A query sweep: drives `reps` queries against one model and returns the
/// checksum of every answer (which also keeps the optimiser honest).
using Sweep = std::function<std::int64_t(const EventModel&, long)>;

struct CaseResult {
  std::string name;
  long queries = 0;
  double lazy_ns = 0.0;      // per query
  double compiled_ns = 0.0;  // per query
  double compile_us = 0.0;   // one-time lowering cost
  double speedup() const { return compiled_ns > 0.0 ? lazy_ns / compiled_ns : 0.0; }
};

double ns_per_op(long reps, int rounds, const std::function<std::int64_t(long)>& body,
                 std::int64_t expect) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    const std::int64_t sum = body(reps);
    const auto t1 = Clock::now();
    if (sum != expect) {
      std::fprintf(stderr, "FATAL: checksum divergence (%lld vs %lld)\n",
                   static_cast<long long>(sum), static_cast<long long>(expect));
      std::exit(1);
    }
    const double ns =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()) /
        static_cast<double>(reps);
    if (ns < best) best = ns;
  }
  return best;
}

/// Measure one lazy-vs-compiled pair.  `lazy` and `comp` must be separately
/// constructed twins of the same model DAG.
CaseResult run_case(const std::string& name, const ModelPtr& lazy, const ModelPtr& comp,
                    const Sweep& sweep, long reps, int rounds) {
  CaseResult res;
  res.name = name;
  res.queries = reps;

  // Warm the lazy twin's memo caches so we compare steady-state costs — the
  // regime the engine's busy-window fixpoints live in.
  const std::int64_t expect = sweep(*lazy, reps);

  // Lower with a horizon wide enough that every sweep query lands inside the
  // compiled coverage (the densest source mix spans ~36k time units per 1024
  // samples); otherwise the compiled side partly measures the lazy fallback.
  rtc::CompileOptions copts;
  copts.max_horizon = 4096;
  const auto c0 = Clock::now();
  comp->ensure_compiled(copts);
  const auto c1 = Clock::now();
  res.compile_us =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0).count()) /
      1000.0;

  res.lazy_ns = ns_per_op(reps, rounds, [&](long n) { return sweep(*lazy, n); }, expect);
  res.compiled_ns = ns_per_op(reps, rounds, [&](long n) { return sweep(*comp, n); }, expect);
  return res;
}

ModelPtr make_output_chain() {
  std::vector<ModelPtr> sources = {
      StandardEventModel::periodic_with_jitter(100, 30),
      StandardEventModel::periodic_with_jitter(70, 15),
      StandardEventModel::sporadic(250, 40, 50),
  };
  ModelPtr m = or_combine(sources);
  m = std::make_shared<OutputModel>(m, 5, 40);
  m = std::make_shared<OutputModel>(m, 2, 25);
  return m;
}

std::int64_t eta_sweep(const EventModel& m, long reps) {
  std::int64_t sum = 0;
  Time dt = 1;
  for (long i = 0; i < reps; ++i) {
    sum += m.eta_plus(dt);
    dt = dt % 50'000 + 13;
  }
  return sum;
}

/// An 8-wide OR join (the synth gateway shape): high aggregate rate, so an
/// eta+ inversion at the same dt walks twice as many galloping probes
/// through the fold while the compiled form stays one flat binary search.
ModelPtr make_wide_or() {
  std::vector<ModelPtr> inputs;
  for (int i = 0; i < 8; ++i) inputs.push_back(StandardEventModel::periodic(100 + 37 * i));
  return or_combine(inputs);
}

std::int64_t delta_sweep(const EventModel& m, long reps) {
  std::int64_t sum = 0;
  Count n = 2;
  for (long i = 0; i < reps; ++i) {
    sum += m.delta_min(n);
    n = n % 1000 + 2;  // default max_horizon is 1024 samples
  }
  return sum;
}

/// Full paper-system CPA run, wall milliseconds, compilation on/off.
double engine_ms(bool compile, int rounds) {
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    auto sys = scenarios::build_paper_system({}, true);
    cpa::EngineOptions opts;
    opts.compile_curves = compile;
    const auto t0 = Clock::now();
    const auto report = cpa::CpaEngine(sys, opts).run();
    const auto t1 = Clock::now();
    if (!report.converged) {
      std::fprintf(stderr, "FATAL: paper system did not converge\n");
      std::exit(1);
    }
    const double ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count()) /
        1000.0;
    if (ms < best) best = ms;
  }
  return best;
}

std::string json_body(const std::vector<CaseResult>& cases, double engine_lazy_ms,
                      double engine_compiled_ms, bool quick) {
  double min_speedup = 1e300;
  double max_speedup = 0.0;
  for (const CaseResult& c : cases) {
    if (c.speedup() < min_speedup) min_speedup = c.speedup();
    if (c.speedup() > max_speedup) max_speedup = c.speedup();
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "{\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    os << "    {\"name\": \"" << c.name << "\", \"queries\": " << c.queries
       << ", \"lazy_ns_per_query\": " << c.lazy_ns
       << ", \"compiled_ns_per_query\": " << c.compiled_ns
       << ", \"compile_us\": " << c.compile_us << ", \"speedup\": " << c.speedup() << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"query_speedup_min\": " << min_speedup << ",\n";
  os << "  \"query_speedup_max\": " << max_speedup << ",\n";
  os << "  \"paper_system_engine\": {\"lazy_ms\": " << engine_lazy_ms
     << ", \"compiled_ms\": " << engine_compiled_ms << "}\n";
  os << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const long reps = quick ? 20'000 : 200'000;
  const int rounds = quick ? 2 : 5;  // best-of; host noise exceeds the gap otherwise

  std::vector<CaseResult> cases;
  // Closed-form eta+ (SEM) vs compiled binary search: the SEM closed form is
  // already cheap, so this bounds the speedup from below.
  cases.push_back(run_case("sem_sporadic_eta", StandardEventModel::sporadic(100, 250, 10),
                           StandardEventModel::sporadic(100, 250, 10), eta_sweep, reps,
                           rounds));
  // Generic eta inversion on an OR node (galloping search over the memoised
  // delta cache) vs one flat binary search — the engine's hottest shape.
  cases.push_back(run_case(
      "or_eta_inversion",
      std::make_shared<OrModel>(StandardEventModel::periodic(250),
                                StandardEventModel::periodic(450)),
      std::make_shared<OrModel>(StandardEventModel::periodic(250),
                                StandardEventModel::periodic(450)),
      eta_sweep, reps, rounds));
  cases.push_back(
      run_case("or8_wide_eta_inversion", make_wide_or(), make_wide_or(), eta_sweep, reps,
               rounds));
  // Output-model chain over an OR of jittered sources: delta queries hit the
  // memo cache (atomic load + virtual dispatch) vs a plain array read.
  cases.push_back(
      run_case("output_chain_delta", make_output_chain(), make_output_chain(), delta_sweep,
               reps, rounds));
  cases.push_back(run_case("output_chain_eta", make_output_chain(), make_output_chain(),
                           eta_sweep, reps, rounds));

  const double lazy_ms = engine_ms(false, rounds);
  const double compiled_ms = engine_ms(true, rounds);

  std::cout << std::fixed << std::setprecision(2);
  for (const CaseResult& c : cases)
    std::cout << c.name << ": lazy " << c.lazy_ns << " ns/q, compiled " << c.compiled_ns
              << " ns/q, speedup " << c.speedup() << "x (compile " << c.compile_us
              << " us)\n";
  std::cout << "paper_system_engine: lazy " << lazy_ms << " ms, compiled " << compiled_ms
            << " ms\n";

  const std::string body = json_body(cases, lazy_ms, compiled_ms, quick);
  if (!hem::bench::merge_json_section(out_path, "algebra_cost", body)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::cout << "wrote " << out_path << " (section algebra_cost)\n";
  return 0;
}
