// Ablation A3 (google-benchmark): cost of the event-model algebra and the
// analyses - OR-fold width, eta inversion, busy-window analysis, pack +
// inner update, and the full paper-system CPA run.

#include <benchmark/benchmark.h>

#include "core/combinators.hpp"
#include "core/standard_event_model.hpp"
#include "hierarchical/pack_constructor.hpp"
#include "scenarios/body_network.hpp"
#include "scenarios/paper_system.hpp"
#include "sched/spp.hpp"

namespace {

using namespace hem;

void BM_SemEtaPlus(benchmark::State& state) {
  const auto m = StandardEventModel::sporadic(100, 250, 10);
  Time dt = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->eta_plus(dt));
    dt = dt % 100'000 + 17;
  }
}
BENCHMARK(BM_SemEtaPlus);

void BM_GenericEtaInversion(benchmark::State& state) {
  // An OR node has no closed-form eta+: measures the galloping inversion.
  const auto m = std::make_shared<OrModel>(StandardEventModel::periodic(250),
                                           StandardEventModel::periodic(450));
  Time dt = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->eta_plus(dt));
    dt = dt % 50'000 + 13;
  }
}
BENCHMARK(BM_GenericEtaInversion);

void BM_OrFoldWidth(benchmark::State& state) {
  const auto width = state.range(0);
  std::vector<ModelPtr> inputs;
  for (int i = 0; i < width; ++i)
    inputs.push_back(StandardEventModel::periodic(100 + 37 * i));
  for (auto _ : state) {
    const auto combined = or_combine(inputs);
    benchmark::DoNotOptimize(combined->delta_min(64));
  }
}
BENCHMARK(BM_OrFoldWidth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_BusyWindowSpp(benchmark::State& state) {
  const auto n_tasks = state.range(0);
  std::vector<sched::TaskParams> tasks;
  for (int i = 0; i < n_tasks; ++i)
    tasks.push_back(sched::TaskParams{"t" + std::to_string(i), i,
                                      sched::ExecutionTime(2 + i),
                                      StandardEventModel::periodic(100 * (i + 1))});
  for (auto _ : state) {
    sched::SppAnalysis a(tasks);
    benchmark::DoNotOptimize(a.analyze(static_cast<std::size_t>(n_tasks - 1)).wcrt);
  }
}
BENCHMARK(BM_BusyWindowSpp)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_PackAndInnerUpdate(benchmark::State& state) {
  const auto n = state.range(0);
  std::vector<PackInput> inputs;
  for (int i = 0; i < n; ++i)
    inputs.push_back({StandardEventModel::periodic(200 + 50 * i),
                      i % 3 == 2 ? SignalCoupling::kPending : SignalCoupling::kTriggering});
  for (auto _ : state) {
    const auto hemodel = pack(inputs);
    const auto after = hemodel->after_response(4, 6);
    benchmark::DoNotOptimize(after->inner(0)->delta_min(32));
  }
}
BENCHMARK(BM_PackAndInnerUpdate)->Arg(2)->Arg(4)->Arg(8);

void BM_FullPaperSystemFlat(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = scenarios::build_paper_system({}, false);
    benchmark::DoNotOptimize(cpa::CpaEngine(sys).run().iterations);
  }
}
BENCHMARK(BM_FullPaperSystemFlat);

void BM_FullPaperSystemHem(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = scenarios::build_paper_system({}, true);
    benchmark::DoNotOptimize(cpa::CpaEngine(sys).run().iterations);
  }
}
BENCHMARK(BM_FullPaperSystemHem);

void BM_BodyNetworkScale(benchmark::State& state) {
  scenarios::BodyNetworkParams p;
  p.replicas = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenarios::analyze_body_network(p).tasks.size());
  }
  state.SetLabel(std::to_string(12 * p.replicas) + " tasks");
}
BENCHMARK(BM_BodyNetworkScale)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
