// Scaling benchmark of the incremental/parallel CPA engine.
//
// Sweeps synthetic systems of three shapes:
//   * chain:  N SPP resources x M tasks each, feed-forward task chains
//             (task j on resource i is activated by task j on resource i-1),
//             so every global iteration touches every resource until the
//             response times settle resource by resource;
//   * hier:   a deep pack/unpack pipeline - each stage packs the outputs of
//             a CPU's tasks into a frame on a CAN bus and the next CPU's
//             tasks unpack the inner streams (the paper's COM-layer shape,
//             stacked D times);
//   * synth:  seeded wide systems from scenarios/synth.hpp (UUniFast
//             utilisation split, layered gateway chains) - hundreds of
//             resources and thousands of tasks, the regime where
//             intra-resource parallelism has to pay off.  Synth configs run
//             the incremental engine only (the non-incremental baseline is
//             covered by the smaller shapes).
//
// Each configuration runs over the job-count sweep and (chain/hier) with
// the incremental engine on and off; results go to BENCH_engine.json:
// wall-clock time, global iterations, local analyses run/skipped, the
// analysis cache hit rate, node reuse counters, and the speedup relative
// to the jobs=1 run of the same configuration.  The JSON also records
// `hardware_threads` - on a single-core host every speedup is ~1.0 by
// construction, and consumers (the CI gate) must check it before judging
// scaling numbers.
//
// Usage: bench_engine_scaling [--quick] [--out <path>] [--trace-out <path>]
//                             [--jobs-list 1,2,4,8] [--synth R,T,seed]
//   --quick      smaller sweep and a single repetition (CI smoke test)
//   --out        output path (default BENCH_engine.json)
//   --jobs-list  comma-separated job counts to sweep (default 1,2,4,8;
//                --quick default 1,2)
//   --synth      benchmark ONLY one synthesised system with R resources,
//                T tasks, and the given seed (the CI scaling gate)
//   --trace-out  record the whole sweep as Chrome trace_event JSON; the
//                timings then include the tracing overhead, so compare a
//                traced run against a default run to measure the probe cost

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/standard_event_model.hpp"
#include "model/cpa_engine.hpp"
#include "model/system.hpp"
#include "obs/exporters.hpp"
#include "obs/obs.hpp"
#include "scenarios/synth.hpp"

namespace {

using namespace hem;
using namespace hem::cpa;

/// Feed-forward grid: `n_res` SPP resources, `m_tasks` chained tasks each.
System make_chain_system(int n_res, int m_tasks) {
  System sys;
  std::vector<ResourceId> res;
  for (int i = 0; i < n_res; ++i)
    res.push_back(sys.add_resource({"R" + std::to_string(i), Policy::kSppPreemptive}));
  std::vector<TaskId> prev_stage(m_tasks);
  for (int i = 0; i < n_res; ++i) {
    for (int j = 0; j < m_tasks; ++j) {
      TaskSpec spec;
      spec.name = "T" + std::to_string(i) + "_" + std::to_string(j);
      spec.resource = res[i];
      spec.priority = j;
      const Time best = 2 + (i + j) % 3;
      spec.cet = sched::ExecutionTime(best, best + 1 + (i + j) % 4);
      const TaskId t = sys.add_task(std::move(spec));
      if (i == 0)
        sys.activate_external(t, StandardEventModel::periodic(200 + 31 * j));
      else
        sys.activate_by(t, {prev_stage[j]});
      prev_stage[j] = t;
    }
  }
  return sys;
}

/// Pack/unpack pipeline: `depth` stages of (CPU tasks -> CAN frame -> unpack).
System make_hier_system(int depth, int signals) {
  System sys;
  std::vector<TaskId> stage(signals);
  for (int d = 0; d < depth; ++d) {
    const ResourceId cpu =
        sys.add_resource({"CPU" + std::to_string(d), Policy::kSppPreemptive});
    const TaskId prev_frame = stage[0];  // frame task of the previous stage
    for (int j = 0; j < signals; ++j) {
      TaskSpec spec;
      spec.name = "S" + std::to_string(d) + "_" + std::to_string(j);
      spec.resource = cpu;
      spec.priority = j;
      spec.cet = sched::ExecutionTime(1, 2);
      const TaskId t = sys.add_task(std::move(spec));
      if (d == 0)
        sys.activate_external(t, StandardEventModel::periodic(400 + 50 * j));
      else
        sys.activate_unpacked(t, prev_frame, j);
      stage[j] = t;
    }
    const ResourceId bus = sys.add_resource({"BUS" + std::to_string(d), Policy::kSpnpCan});
    TaskSpec frame;
    frame.name = "F" + std::to_string(d);
    frame.resource = bus;
    frame.priority = 0;
    frame.cet = sched::ExecutionTime(4, 4);
    const TaskId f = sys.add_task(std::move(frame));
    std::vector<PackedActivation::Input> inputs;
    for (int j = 0; j < signals; ++j)
      inputs.push_back({stage[j], SignalCoupling::kTriggering});
    sys.activate_packed(f, std::move(inputs));
    stage[0] = f;  // next stage unpacks this frame
  }
  return sys;
}

struct Run {
  std::string system;
  int resources = 0;
  int tasks = 0;
  int jobs = 1;
  bool incremental = true;
  double wall_ms = 0.0;
  int iterations = 0;
  EngineStats stats;
  double speedup_vs_jobs1 = 1.0;
};

// One timed analysis of a FRESH system (fresh event-model nodes with cold
// memo caches): model nodes memoise their delta curves, so reusing one
// System across runs would let the first run warm the caches for every
// later one and inflate the apparent speedup of higher job counts.
Run measure_once(const std::string& name, const std::function<System()>& build, int jobs,
                 bool incremental) {
  Run run;
  run.system = name;
  run.jobs = jobs;
  run.incremental = incremental;
  const System sys = build();
  run.resources = static_cast<int>(sys.resources().size());
  run.tasks = static_cast<int>(sys.tasks().size());
  EngineOptions opts;
  opts.jobs = jobs;
  opts.incremental = incremental;
  CpaEngine engine(sys, opts);
  const auto t0 = std::chrono::steady_clock::now();
  const AnalysisReport report = engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  run.iterations = report.iterations;
  run.stats = report.stats;
  if (!report.converged) std::fprintf(stderr, "warning: %s did not converge\n", name.c_str());
  return run;
}

/// Parse a comma-separated list of non-negative integers ("1,2,4,8").
/// Returns false on malformed input.
bool parse_int_list(const std::string& text, std::vector<long>& out) {
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty() || item.find_first_not_of("0123456789") != std::string::npos) return false;
    out.push_back(std::stol(item));
  }
  return !out.empty();
}

/// Render this bench's section of the results file (merged into the shared
/// BENCH_engine.json under "engine_scaling" — see bench_json.hpp).
void write_json(std::ostream& os, const std::vector<Run>& runs, bool quick) {
  const unsigned hw = std::thread::hardware_concurrency();
  os << "{\n  \"quick\": " << (quick ? "true" : "false")
     << ",\n  \"hardware_threads\": " << hw << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    os << "    {\"system\": \"" << r.system << "\", \"resources\": " << r.resources
       << ", \"tasks\": " << r.tasks << ", \"jobs\": " << r.jobs
       << ", \"incremental\": " << (r.incremental ? "true" : "false")
       << ",\n     \"wall_ms\": " << r.wall_ms << ", \"iterations\": " << r.iterations
       << ", \"local_analyses_run\": " << r.stats.local_analyses_run
       << ", \"local_analyses_skipped\": " << r.stats.local_analyses_skipped
       << ",\n     \"analysis_cache_hit_rate\": " << r.stats.analysis_cache_hit_rate()
       << ", \"models_reused\": " << r.stats.models_reused
       << ", \"models_rebuilt\": " << r.stats.models_rebuilt
       << ", \"node_reuse_rate\": " << r.stats.node_reuse_rate()
       << ",\n     \"speedup_vs_jobs1\": " << r.speedup_vs_jobs1 << "}"
       << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_engine.json";
  std::string trace_path;
  std::vector<long> jobs_list;
  std::vector<long> synth_spec;  ///< R,T,seed; non-empty = single-synth mode
  const auto usage = [] {
    std::cerr << "usage: bench_engine_scaling [--quick] [--out <path>] "
                 "[--trace-out <path>] [--jobs-list 1,2,4,8] [--synth R,T,seed]\n";
    return 3;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      quick = true;
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (flag == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (flag == "--jobs-list" && i + 1 < argc) {
      if (!parse_int_list(argv[++i], jobs_list)) return usage();
    } else if (flag == "--synth" && i + 1 < argc) {
      if (!parse_int_list(argv[++i], synth_spec) || synth_spec.size() != 3) return usage();
    } else {
      return usage();
    }
  }

  hem::obs::Tracer tracer;
  if (!trace_path.empty()) hem::obs::set_tracer(&tracer);

  // Best-of-5: the tiny-system rows finish in a few ms, where run-to-run
  // noise on a loaded host exceeds the ~5% resolution the speedup columns
  // are read at; three repetitions proved too few to pin the minimum.
  const int reps = quick ? 1 : 5;
  const std::vector<int> chain_sizes = quick ? std::vector<int>{2, 4} : std::vector<int>{2, 4, 8};
  const std::vector<int> hier_depths = quick ? std::vector<int>{2} : std::vector<int>{2, 4};
  std::vector<int> job_counts;
  if (!jobs_list.empty())
    for (const long j : jobs_list) job_counts.push_back(static_cast<int>(j));
  else
    job_counts = quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};

  struct Config {
    std::string name;
    std::function<System()> build;
    bool sweep_incremental = true;  ///< also run the non-incremental baseline
  };
  const auto make_synth_config = [](long r, long t, long seed) {
    hem::scenarios::SynthParams p;
    p.resources = static_cast<int>(r);
    p.tasks = static_cast<int>(t);
    p.seed = static_cast<std::uint64_t>(seed);
    return Config{"synth_r" + std::to_string(r) + "_t" + std::to_string(t) + "_s" +
                      std::to_string(seed),
                  [p] { return hem::scenarios::build_synth_system(p); }, false};
  };
  std::vector<Config> configs;
  if (!synth_spec.empty()) {
    configs.push_back(make_synth_config(synth_spec[0], synth_spec[1], synth_spec[2]));
  } else {
    for (const int n : chain_sizes)
      configs.push_back(
          {"chain_n" + std::to_string(n), [n] { return make_chain_system(n, 8); }, true});
    for (const int d : hier_depths)
      configs.push_back(
          {"hier_d" + std::to_string(d), [d] { return make_hier_system(d, 4); }, true});
    // Wide systems: the intra-resource-parallelism story.  Incremental only
    // (the classic baseline re-analysis is covered by chain/hier above).
    configs.push_back(make_synth_config(100, 1000, 1));
    if (!quick) configs.push_back(make_synth_config(200, 2000, 1));
  }

  std::vector<Run> runs;
  for (const Config& cfg : configs) {
    for (const bool incremental : {true, false}) {
      if (!incremental && !cfg.sweep_incremental) continue;
      // Rep-major order: each repetition sweeps the whole jobs list and the
      // per-cell minimum is taken across repetitions.  The tiny systems
      // finish in a few milliseconds, so a transient host-load burst that
      // lands on one cell's back-to-back repetitions would skew its minimum
      // (and therefore the speedup column); spread across the sweep it
      // degrades one repetition of every cell instead.
      std::vector<Run> cells;
      for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t ji = 0; ji < job_counts.size(); ++ji) {
          Run one = measure_once(cfg.name, cfg.build, job_counts[ji], incremental);
          if (rep == 0)
            cells.push_back(std::move(one));
          else if (one.wall_ms < cells[ji].wall_ms)
            cells[ji] = std::move(one);
        }
      }
      double jobs1_ms = 0.0;
      for (Run& run : cells) {
        if (run.jobs == 1) jobs1_ms = run.wall_ms;
        run.speedup_vs_jobs1 =
            run.wall_ms > 0.0 && jobs1_ms > 0.0 ? jobs1_ms / run.wall_ms : 1.0;
        std::printf("%-18s inc=%d jobs=%d  %8.3f ms  iters=%d  run=%ld skip=%ld  hit=%.2f  speedup=%.2f\n",
                    cfg.name.c_str(), incremental ? 1 : 0, run.jobs, run.wall_ms,
                    run.iterations, run.stats.local_analyses_run,
                    run.stats.local_analyses_skipped, run.stats.analysis_cache_hit_rate(),
                    run.speedup_vs_jobs1);
        runs.push_back(std::move(run));
      }
    }
  }

  std::ostringstream body;
  write_json(body, runs, quick);
  if (!hem::bench::merge_json_section(out_path, "engine_scaling", body.str())) {
    std::cerr << "error: cannot write '" << out_path << "'\n";
    return 2;
  }
  std::cout << "wrote " << out_path << " (section engine_scaling, " << runs.size()
            << " runs)\n";

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "error: cannot write '" << trace_path << "'\n";
      return 2;
    }
    hem::obs::write_chrome_trace(trace_file, tracer, hem::obs::registry());
    std::cout << "wrote " << trace_path << " (" << tracer.size() << " trace events)\n";
  }
  return 0;
}
