// Regenerates the paper's Figure 4: eta+ functions of the output event
// stream of frame F1 (total frame arrivals) and of the unpacked input
// event streams of T1, T2 and T3.  Prints an aligned table and a CSV block
// (redirect to a file to plot).

#include <iostream>

#include "core/model_io.hpp"
#include "scenarios/paper_system.hpp"

int main() {
  using namespace hem;

  const auto results = scenarios::analyze_paper_system();

  std::vector<EtaSeries> series;
  series.push_back(sample_eta_plus(*results.f1_total, "F1_total", 5000, 125));
  const char* names[] = {"T1_unpacked", "T2_unpacked", "T3_unpacked"};
  for (std::size_t i = 0; i < 3; ++i)
    series.push_back(sample_eta_plus(*results.f1_unpacked[i], names[i], 5000, 125));

  std::cout << "=== Figure 4: eta+(dt) series ===\n" << format_eta_table(series);

  std::cout << "\n=== CSV ===\n";
  write_eta_csv(std::cout, series);

  std::cout << "\nReading: using the per-signal unpacked functions instead of the total\n"
               "frame-arrival function removes the overestimation on CPU1's inputs.\n";
  return 0;
}
