// Quickstart: model a tiny distributed system, run the compositional
// analysis, and inspect event-model curves.
//
// System: a periodic sensor task on CPU0 sends its results to a processing
// task on CPU1; a high-priority housekeeping task interferes on each CPU.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdio>
#include <iostream>

#include "hem/hem.hpp"

int main() {
  using namespace hem;

  // --- 1. Describe the platform -----------------------------------------
  cpa::System sys;
  const auto cpu0 = sys.add_resource({"CPU0", cpa::Policy::kSppPreemptive});
  const auto cpu1 = sys.add_resource({"CPU1", cpa::Policy::kSppPreemptive});

  // --- 2. Describe the tasks (name, resource, priority, CET interval) ---
  const auto hk0 = sys.add_task({"hk0", cpu0, 1, sched::ExecutionTime(2, 3)});
  const auto sensor = sys.add_task({"sensor", cpu0, 2, sched::ExecutionTime(8, 12)});
  const auto hk1 = sys.add_task({"hk1", cpu1, 1, sched::ExecutionTime(1, 2)});
  const auto process = sys.add_task({"process", cpu1, 2, sched::ExecutionTime(15, 20)});

  // --- 3. Describe the event streams ------------------------------------
  sys.activate_external(hk0, StandardEventModel::periodic(10));
  sys.activate_external(sensor, StandardEventModel::periodic_with_jitter(100, 15));
  sys.activate_external(hk1, StandardEventModel::periodic(8));
  sys.activate_by(process, {sensor});  // process consumes sensor's output

  // --- 4. Run the global analysis ---------------------------------------
  const auto report = cpa::CpaEngine(sys).run();
  std::cout << "=== Quickstart system ===\n" << report.format() << "\n";

  // --- 5. Inspect the stream that reaches `process` ----------------------
  const auto& activation = report.task("process").activation;
  std::cout << "Activation stream of 'process': " << activation->describe() << "\n";
  std::cout << format_delta_table(*activation, 6) << "\n";
  std::cout << "eta+ over growing windows:\n"
            << format_eta_table({sample_eta_plus(*activation, "process", 500, 50)});

  // --- 6. Single quantities are one call away ----------------------------
  std::printf("\nWCRT(process) = %lld, max activations in 300 ticks = %lld\n",
              static_cast<long long>(report.task("process").wcrt),
              static_cast<long long>(activation->eta_plus(300)));
  return 0;
}
