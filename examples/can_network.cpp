// A larger CAN network example: three ECUs exchange eight signals over one
// CAN bus in four frames (direct, periodic and mixed types), with CAN
// transmission times derived from payload sizes and bit rate.  Shows the
// com:: API (frames, signals, packing) together with the system engine.
//
// Run:  ./build/examples/example_can_network

#include <iostream>

#include "hem/hem.hpp"

int main() {
  using namespace hem;
  using com::Frame;
  using com::FrameType;
  using com::Signal;
  using com::SignalKind;

  // 500 kbit/s CAN, 1 tick = 1 us -> 2 ticks per bit.
  const Time ticks_per_bit = 2;

  // --- Signals produced on ECU A and ECU B --------------------------------
  const auto wheel_speed = StandardEventModel::periodic(5'000);        // 5 ms
  const auto steering = StandardEventModel::periodic_with_jitter(10'000, 1'000);
  const auto brake_evt = StandardEventModel::sporadic(20'000, 0, 20'000);
  const auto temp = StandardEventModel::periodic(100'000);             // slow telemetry
  const auto diag = StandardEventModel::periodic(50'000);

  // --- Frames --------------------------------------------------------------
  Frame chassis;  // direct, high priority: safety signals trigger instantly
  chassis.name = "chassis";
  chassis.type = FrameType::kDirect;
  chassis.priority = 1;
  chassis.signals = {
      Signal{"wheel_speed", wheel_speed, SignalKind::kTriggering, 2, "ctrl", ""},
      Signal{"brake_evt", brake_evt, SignalKind::kTriggering, 1, "ctrl", ""},
  };
  chassis.transmission_time = com::can_frame_time(chassis.payload_bytes(), ticks_per_bit);

  Frame steering_f;  // mixed: periodic refresh plus event triggering
  steering_f.name = "steering";
  steering_f.type = FrameType::kMixed;
  steering_f.period = 20'000;
  steering_f.priority = 2;
  steering_f.signals = {
      Signal{"steering", steering, SignalKind::kTriggering, 2, "ctrl", ""},
  };
  steering_f.transmission_time =
      com::can_frame_time(steering_f.payload_bytes(), ticks_per_bit);

  Frame telemetry;  // periodic: pending signals ride the timer
  telemetry.name = "telemetry";
  telemetry.type = FrameType::kPeriodic;
  telemetry.period = 50'000;
  telemetry.priority = 3;
  telemetry.signals = {
      Signal{"temp", temp, SignalKind::kPending, 2, "logger", ""},
      Signal{"diag", diag, SignalKind::kPending, 4, "logger", ""},
  };
  telemetry.transmission_time =
      com::can_frame_time(telemetry.payload_bytes(), ticks_per_bit);

  com::ComLayer layer({chassis, steering_f, telemetry});

  // --- Bus analysis --------------------------------------------------------
  std::vector<sched::TaskParams> bus_frames;
  for (std::size_t i = 0; i < layer.frames().size(); ++i) {
    bus_frames.push_back(sched::TaskParams{layer.frame(i).name, layer.frame(i).priority,
                                           *layer.frame(i).transmission_time,
                                           layer.activation_model(i)});
  }
  sched::CanBusAnalysis bus(bus_frames);
  const auto bus_results = bus.analyze_all();

  std::cout << "=== CAN bus (500 kbit/s) ===\n";
  for (std::size_t i = 0; i < bus_results.size(); ++i) {
    std::cout << bus_results[i].name << ": payload " << layer.frame(i).payload_bytes()
              << " B, C = [" << layer.frame(i).transmission_time->best << ":"
              << layer.frame(i).transmission_time->worst << "] us, R = ["
              << bus_results[i].bcrt << ":" << bus_results[i].wcrt << "] us\n";
  }

  // --- Receiver-side comparison: flat vs unpacked --------------------------
  std::cout << "\n=== Receiver activation bounds over 100 ms ===\n";
  for (std::size_t i = 0; i < layer.frames().size(); ++i) {
    const auto hem = layer.transmitted(i, bus_results[i].bcrt, bus_results[i].wcrt);
    const auto flat = layer.flat_receiver_model(i, bus_results[i].bcrt, bus_results[i].wcrt);
    std::cout << layer.frame(i).name << ": total frame arrivals eta+(100ms) = "
              << flat->eta_plus(100'000) << "\n";
    for (std::size_t s = 0; s < layer.frame(i).signals.size(); ++s) {
      std::cout << "    " << layer.frame(i).signals[s].name << " -> "
                << layer.frame(i).signals[s].destination
                << ": unpacked eta+(100ms) = " << hem->inner(s)->eta_plus(100'000) << "\n";
    }
  }

  std::cout << "\nThe pending telemetry signals show the largest gap between the flat\n"
               "and the unpacked bound - exactly the effect the HEM paper exploits.\n";
  return 0;
}
