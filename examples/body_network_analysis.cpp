// Full-network walk-through: two CAN buses joined by a gateway, ten-plus
// hierarchically packed signal streams, analysed end to end.  Demonstrates
// the library at realistic scale and prints end-to-end latencies for the
// forwarded (two-hop) signals.
//
// Run:  ./build/examples/example_body_network_analysis

#include <array>
#include <iostream>

#include "hem/hem.hpp"
#include "scenarios/body_network.hpp"

int main() {
  using namespace hem;

  const auto report = scenarios::analyze_body_network();
  std::cout << "=== Body/powertrain network (" << report.tasks.size() << " tasks) ===\n"
            << report.format() << "\n";

  // Two-hop wheel-speed path: PT1 (powertrain CAN) -> gateway -> GW1
  // (body CAN) -> dashboard.
  const std::array<std::string, 4> wheel_path{"PT1", "gw_wheel", "GW1", "dash_wheel"};
  std::cout << "wheel-speed end-to-end (PT_CAN -> GW -> BD_CAN -> dash): "
            << cpa::path_wcrt(report, wheel_path) << " ticks\n";

  // Temperature path adds two sampling delays: the pending signal waits for
  // PT2's periodic frame and again for GW1 at the gateway.
  const Time pt2_gap = report.task("PT2").activation->delta_plus(2);
  const Time gw1_gap = report.task("GW1").activation->delta_plus(2);
  const std::array<std::string, 4> temp_path{"PT2", "gw_temp", "GW1", "dash_temp"};
  std::cout << "temperature end-to-end incl. sampling (" << pt2_gap << " + " << gw1_gap
            << "): "
            << cpa::path_wcrt_with_sampling(report, temp_path,
                                            std::array<Time, 2>{pt2_gap, gw1_gap})
            << " ticks\n";

  // Utilisation summary per resource.
  std::cout << "\nPer-resource load:\n";
  for (const char* res : {"PT_CAN", "BD_CAN", "GW_CPU", "DASH_CPU", "BC_CPU"}) {
    double load = 0;
    for (const auto& t : report.tasks)
      if (t.resource == res) load += t.utilization;
    std::cout << "  " << res << ": " << static_cast<int>(load * 100) << "%\n";
  }
  return 0;
}
