// Design-space exploration with the sensitivity API: starting from the
// paper system, find how much execution-time budget each receiver task has
// before deadlines break, and how fast source S1 may run - comparing what
// the flat and the hierarchical analyses certify.
//
// Run:  ./build/examples/example_sensitivity_tuning

#include <array>
#include <iostream>

#include "hem/hem.hpp"
#include "scenarios/paper_system.hpp"

int main() {
  using namespace hem;
  using cpa::DeadlineMap;

  const scenarios::PaperSystemParams params;
  const cpa::System flat = scenarios::build_paper_system(params, false);
  const cpa::System hier = scenarios::build_paper_system(params, true);

  // Deadlines: each receiver must finish within its source's period.
  const DeadlineMap deadlines{{"T1", 250}, {"T2", 450}, {"T3", 1000}};

  std::cout << "Baseline feasibility:\n";
  for (const auto* mode : {"flat", "HEM"}) {
    const auto& sys = std::string(mode) == "flat" ? flat : hier;
    const auto result = cpa::check_feasible(sys, deadlines);
    std::cout << "  " << mode << ": " << (result.feasible ? "feasible" : result.reason)
              << "\n";
  }

  std::cout << "\nExecution-time headroom (max CET keeping all deadlines):\n";
  const std::array<std::pair<const char*, Time>, 3> tasks{
      std::pair{"T1", params.t1_cet}, std::pair{"T2", params.t2_cet},
      std::pair{"T3", params.t3_cet}};
  for (const auto& [name, cet] : tasks) {
    const Time f = cpa::max_feasible_cet(flat, name, 1, 1000, deadlines);
    const Time h = cpa::max_feasible_cet(hier, name, 1, 1000, deadlines);
    std::cout << "  " << name << ": paper " << cet << ", flat certifies " << f
              << ", HEM certifies " << h << " (+" << (h - f) << ")\n";
  }

  std::cout << "\nInterpretation: the flat analysis wastes most of the budget on\n"
               "phantom activations; the hierarchical analysis certifies the same\n"
               "hardware for substantially heavier (or slower, cheaper) receivers.\n";
  return 0;
}
