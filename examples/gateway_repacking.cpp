// Two-hop stream hierarchy: a gateway ECU receives a frame from CAN-A,
// unpacks the signals, and repacks a subset of them into a new frame on
// CAN-B.  The hierarchical event models survive both hops: the final
// receivers still see per-signal activation bounds instead of the
// accumulated frame rates - the generalisation the paper's conclusion
// points to ("processing and communication on the combined as well as on
// the embedded individual streams").
//
// Run:  ./build/examples/example_gateway_repacking

#include <iostream>

#include "hem/hem.hpp"

int main() {
  using namespace hem;
  using cpa::Policy;

  cpa::System sys;
  const auto can_a = sys.add_resource({"CAN_A", Policy::kSpnpCan});
  const auto can_b = sys.add_resource({"CAN_B", Policy::kSpnpCan});
  const auto gw = sys.add_resource({"GW_CPU", Policy::kSppPreemptive});
  const auto ecu = sys.add_resource({"ECU_CPU", Policy::kSppPreemptive});

  // Hop 1: sensor signals packed into frame FA on CAN-A.
  const auto fa = sys.add_task({"FA", can_a, 1, sched::ExecutionTime(4)});
  const auto fa2 = sys.add_task({"FA2", can_a, 2, sched::ExecutionTime(3)});  // interferer
  sys.activate_packed(fa, {{StandardEventModel::periodic(200), SignalCoupling::kTriggering},
                           {StandardEventModel::periodic(600), SignalCoupling::kTriggering},
                           {StandardEventModel::periodic(1500), SignalCoupling::kPending}});
  sys.activate_external(fa2, StandardEventModel::periodic(500));

  // Gateway tasks: one unpacked handler per forwarded signal.
  const auto gw_fast = sys.add_task({"gw_fast", gw, 1, sched::ExecutionTime(5, 8)});
  const auto gw_slow = sys.add_task({"gw_slow", gw, 2, sched::ExecutionTime(6, 12)});
  sys.activate_unpacked(gw_fast, fa, 0);
  sys.activate_unpacked(gw_slow, fa, 2);

  // Hop 2: the gateway repacks the two forwarded streams into frame FB.
  const auto fb = sys.add_task({"FB", can_b, 1, sched::ExecutionTime(5)});
  sys.activate_packed(fb, {{gw_fast, SignalCoupling::kTriggering},
                           {gw_slow, SignalCoupling::kPending}});

  // Final receivers on the remote ECU.
  const auto rx_fast = sys.add_task({"rx_fast", ecu, 1, sched::ExecutionTime(10)});
  const auto rx_slow = sys.add_task({"rx_slow", ecu, 2, sched::ExecutionTime(30)});
  sys.activate_unpacked(rx_fast, fb, 0);
  sys.activate_unpacked(rx_slow, fb, 1);

  const auto report = cpa::CpaEngine(sys).run();
  std::cout << "=== Two-hop gateway system ===\n" << report.format() << "\n";

  std::cout << "Activation rates at the final ECU over 10000 ticks:\n";
  std::cout << "  rx_fast (from 200-tick sensor): eta+ = "
            << report.task("rx_fast").activation->eta_plus(10'000) << "\n";
  std::cout << "  rx_slow (from 1500-tick pending sensor): eta+ = "
            << report.task("rx_slow").activation->eta_plus(10'000) << "\n";
  std::cout << "  FB total frame arrivals: eta+ = "
            << report.task("FB").output->eta_plus(10'000) << "\n\n";

  // End-to-end latency of the fast path, including the pending signal's
  // sampling delay at the gateway repacking for the slow path.
  const std::array<std::string, 3> fast_path{"FA", "gw_fast", "FB"};
  std::cout << "Fast path FA -> gw_fast -> FB worst-case latency: "
            << cpa::path_wcrt(report, fast_path) + report.task("rx_fast").wcrt << "\n";
  const Time sampling = report.task("FB").activation->delta_plus(2);
  const std::array<std::string, 3> slow_path{"FA", "gw_slow", "FB"};
  std::cout << "Slow path latency incl. repacking sampling delay ("
            << format_time(sampling) << "): "
            << cpa::path_wcrt_with_sampling(report, slow_path,
                                            std::array<Time, 1>{sampling}) +
                   report.task("rx_slow").wcrt
            << "\n";
  return 0;
}
