// Hierarchical scheduling meets hierarchical event streams: two periodic
// resource servers (Shin/Lee) share a CPU; the tasks inside one server are
// activated by signals unpacked from a CAN frame.  This combines the
// paper's stream hierarchy with the local scheduling hierarchies it cites
// as prior work ([8][10]).
//
// The frame packs three signals: two triggering (250 / 400) and one slow
// pending status signal (1000) that feeds a HIGH-priority safety handler
// inside the server.  With flat streams the handler must be charged at the
// total frame rate (~1/154), which overloads the server's 40% budget; the
// unpacked inner streams keep the true per-signal rates and the server
// remains comfortably schedulable.
//
// Run:  ./build/examples/example_hierarchical_scheduling

#include <iostream>

#include "hem/hem.hpp"

int main() {
  using namespace hem;

  // --- Stream hierarchy: three signals packed into one frame ---------------
  const auto ctrl_cmd = StandardEventModel::periodic(250);
  const auto aux_cmd = StandardEventModel::periodic(400);
  const auto status = StandardEventModel::periodic(1'000);
  const auto hem_in = pack({{ctrl_cmd, SignalCoupling::kTriggering},
                            {aux_cmd, SignalCoupling::kTriggering},
                            {status, SignalCoupling::kPending}});

  // Bus transmission: one frame, C = [4, 4], alone on the bus.
  sched::CanBusAnalysis bus(
      {sched::TaskParams{"frame", 1, sched::ExecutionTime(4), hem_in->outer()}});
  const auto frame_rt = bus.analyze(0);
  const auto hem_out = hem_in->after_response(frame_rt.bcrt, frame_rt.wcrt);
  std::cout << "Frame response on the bus: [" << frame_rt.bcrt << ":" << frame_rt.wcrt
            << "]\n";

  // --- Scheduling hierarchy: two servers on the receiving CPU -------------
  sched::SppAnalysis parent({
      sched::TaskParams{"server_ctrl", 1, sched::ExecutionTime(40),
                        StandardEventModel::periodic(100)},
      sched::TaskParams{"server_misc", 2, sched::ExecutionTime(30),
                        StandardEventModel::periodic(100)},
  });
  for (const auto& r : parent.analyze_all())
    std::cout << r.name << " on CPU: R+ = " << r.wcrt << " (budget window 100)\n";

  // Child level inside the (Pi=100, Theta=40) control server:
  //   rx_status (prio 1, C=60): safety handler for the slow pending signal,
  //   rx_ctrl   (prio 2, C=10): control loop on the fast signal,
  //   rx_aux    (prio 3, C=5).
  const sched::PeriodicServer ctrl_server(100, 40);
  const auto make_tasks = [&](ModelPtr act_status, ModelPtr act_ctrl, ModelPtr act_aux) {
    return std::vector<sched::TaskParams>{
        {"rx_status", 1, sched::ExecutionTime(60), std::move(act_status)},
        {"rx_ctrl", 2, sched::ExecutionTime(10), std::move(act_ctrl)},
        {"rx_aux", 3, sched::ExecutionTime(5), std::move(act_aux)},
    };
  };

  std::cout << "\n=== Inside the server, HEM (unpacked per-signal streams) ===\n";
  sched::ServerSppAnalysis child(
      ctrl_server, make_tasks(hem_out->inner(2), hem_out->inner(0), hem_out->inner(1)));
  for (const auto& r : child.analyze_all())
    std::cout << r.name << ": R+ = " << r.wcrt << ", busy period " << r.busy_period << "\n";

  // --- What flat streams would have claimed --------------------------------
  const auto flat = std::make_shared<OutputModel>(hem_in->outer(), frame_rt.bcrt,
                                                  frame_rt.wcrt);
  std::cout << "\n=== Same receivers with flat (total-frame) activation ===\n";
  try {
    sched::ServerSppAnalysis flat_child(ctrl_server, make_tasks(flat, flat, flat));
    for (const auto& r : flat_child.analyze_all())
      std::cout << r.name << ": R+ = " << r.wcrt << "\n";
  } catch (const AnalysisError& e) {
    std::cout << "ANALYSIS FAILS: " << e.what() << "\n";
    std::cout << "\nThe flat abstraction charges the 60-tick safety handler at the\n"
                 "total frame rate (~1/154), overloading the server's 40% budget -\n"
                 "although the real per-signal demand fits easily.  The unpacked\n"
                 "hierarchical streams above prove the system schedulable.\n";
  }
  return 0;
}
