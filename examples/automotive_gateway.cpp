// The paper's evaluation system (Fig. 2): four sources, an AUTOSAR-style
// COM layer packing signals into two CAN frames, and three receiver tasks
// on an SPP-scheduled CPU.  Runs BOTH analyses - flat event streams vs.
// hierarchical event models - and prints the paper's Table 3 and Figure 4
// data, then validates the HEM bounds against a discrete-event simulation.
//
// Run:  ./build/examples/example_automotive_gateway

#include <cstdio>
#include <iostream>

#include "hem/hem.hpp"
#include "scenarios/paper_system.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace hem;

  const auto results = scenarios::analyze_paper_system();

  std::cout << "=== Flat analysis (classic event streams) ===\n"
            << results.flat.format() << "\n";
  std::cout << "=== HEM analysis (hierarchical event models) ===\n"
            << results.hem.format() << "\n";

  std::cout << "=== Table 3: WCRT on CPU1, flat vs HEM ===\n";
  std::printf("%-6s %-6s %-6s %10s %10s %8s\n", "Task", "CET", "Prio", "R+ flat", "R+ HEM",
              "Red.");
  for (const auto& row : results.table3) {
    std::printf("%-6s %-6lld %-6s %10lld %10lld %7.1f%%\n", row.task.c_str(),
                static_cast<long long>(row.cet), row.priority.c_str(),
                static_cast<long long>(row.wcrt_flat), static_cast<long long>(row.wcrt_hem),
                row.reduction_percent);
  }

  std::cout << "\n=== Figure 4: eta+ of F1 output vs unpacked T1/T2/T3 inputs ===\n";
  std::vector<EtaSeries> series;
  series.push_back(sample_eta_plus(*results.f1_total, "F1_total", 4000, 250));
  const char* names[] = {"T1", "T2", "T3"};
  for (std::size_t i = 0; i < 3; ++i)
    series.push_back(sample_eta_plus(*results.f1_unpacked[i], names[i], 4000, 250));
  std::cout << format_eta_table(series);

  std::cout << "\n=== Simulation cross-check (worst-case burst mode) ===\n";
  const auto cfg = scenarios::make_paper_sim_config({}, 200'000, sim::GenMode::kEarliest, 1);
  const auto simres = sim::Simulator(cfg).run();
  std::printf("%-6s %12s %12s\n", "Task", "sim WCRT", "HEM bound");
  for (const char* t : {"T1", "T2", "T3"}) {
    std::printf("%-6s %12lld %12lld\n", t,
                static_cast<long long>(simres.tasks.at(t).wcrt),
                static_cast<long long>(results.hem.task(t).wcrt));
  }
  return 0;
}
