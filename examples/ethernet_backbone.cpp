// Switched-Ethernet backbone with strict-priority egress queues - the
// system class the HEM authors moved on to after CAN (formal Ethernet
// worst-case analyses).  Each switch egress port is a non-preemptive
// static-priority resource (a frame in transmission cannot be aborted);
// store-and-forward hops chain via output event streams.
//
// Flows over a two-switch backbone (100 Mbit/s, 1 tick = 1 ns):
//   control  : 100-byte frames every 1 ms, high priority, 2 hops
//   audio    : 400-byte frames every 500 us, mid priority, 2 hops
//   video    : 1500-byte frames every 250 us, low priority, first hop only
//
// Run:  ./build/examples/example_ethernet_backbone

#include <array>
#include <iostream>

#include "hem/hem.hpp"

int main() {
  using namespace hem;
  using cpa::Policy;

  const Time ns_per_byte = 80;  // 100 Mbit/s
  const auto ctrl_time = com::ethernet_frame_time(100, ns_per_byte);
  const auto audio_time = com::ethernet_frame_time(400, ns_per_byte);
  const auto video_time = com::ethernet_frame_time(1500, ns_per_byte);

  cpa::System sys;
  const auto port1 = sys.add_resource({"sw1_egress", Policy::kSpnpCan});
  const auto port2 = sys.add_resource({"sw2_egress", Policy::kSpnpCan});

  // Hop 1 on switch 1.
  const auto ctrl1 = sys.add_task({"ctrl@sw1", port1, 1, ctrl_time});
  const auto audio1 = sys.add_task({"audio@sw1", port1, 2, audio_time});
  const auto video1 = sys.add_task({"video@sw1", port1, 3, video_time});
  sys.activate_external(ctrl1, StandardEventModel::periodic(1'000'000));
  sys.activate_external(audio1, StandardEventModel::periodic(500'000));
  sys.activate_external(video1, StandardEventModel::periodic(250'000));

  // Hop 2 on switch 2 (video exits after switch 1).
  const auto ctrl2 = sys.add_task({"ctrl@sw2", port2, 1, ctrl_time});
  const auto audio2 = sys.add_task({"audio@sw2", port2, 2, audio_time});
  sys.activate_by(ctrl2, {ctrl1});
  sys.activate_by(audio2, {audio1});

  const auto report = cpa::CpaEngine(sys).run();
  std::cout << "=== Two-switch strict-priority Ethernet backbone ===\n"
            << report.format() << "\n";

  const std::array<std::string, 2> ctrl_path{"ctrl@sw1", "ctrl@sw2"};
  const std::array<std::string, 2> audio_path{"audio@sw1", "audio@sw2"};
  std::cout << "control end-to-end latency:  " << cpa::path_wcrt(report, ctrl_path)
            << " ns\n";
  std::cout << "audio end-to-end latency:    " << cpa::path_wcrt(report, audio_path)
            << " ns\n";
  std::cout << "video hop latency:           " << report.task("video@sw1").wcrt << " ns\n\n";

  std::cout << "Even the highest-priority control frame waits for one full\n"
               "video frame per hop (non-preemptive blocking: "
            << video_time.worst << " ns).\n";

  // What a shaper buys on the AUDIO class: smooth its bursts so the
  // control class sees bounded interference even if audio jitters upstream.
  const auto bursty_audio = StandardEventModel::periodic_with_jitter(500'000, 900'000);
  const auto shaped_audio =
      std::make_shared<MinDistanceShaper>(bursty_audio, 450'000, Count{1} << 16);
  std::cout << "\nShaper on a bursty audio source: max 2 back-to-back frames become\n"
               "spaced >= 450 us (added delay bound "
            << shaped_audio->delay_bound() << " ns); shaping the lowest class cannot\n"
               "reduce the blocking term - only smaller frames (or preemption) can.\n";
  return 0;
}
